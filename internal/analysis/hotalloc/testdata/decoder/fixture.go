// Package decoder is a hotalloc fixture: hot-path roots, helpers the
// call graph must reach, sanctioned growth idioms, and a cold path the
// walk must prune.
package decoder

import "fmt"

type scratch struct {
	buf  []int
	m    map[int]int
	heap []float64
}

// DecodeWith is a hot-path root; its whole call graph is checked.
//
//fpn:hotpath
func DecodeWith(sc *scratch, n int) ([]int, error) {
	direct := make([]int, n) // want "make in hot path DecodeWith"
	sc.buf = grow(sc.buf, n)
	sc.buf = append(sc.buf[:0], direct...)
	helper(sc, n)
	if n < 0 {
		return nil, fmt.Errorf("decoder: negative shot size %d", n) // failure path: fine
	}
	if n > 1<<20 {
		return rare(sc, n), nil
	}
	return sc.buf, nil
}

// helper is reached transitively from the root.
func helper(sc *scratch, n int) {
	sc.heap = append(sc.heap, float64(n)) // self-append: fine
	other := append(sc.buf, n)            // want "append in hot path helper"
	lit := []int{n}                       // want "composite literal in hot path helper"
	if sc.m == nil {
		sc.m = map[int]int{} // lazy init behind nil guard: fine
	}
	fmt.Println(other, lit) // want "fmt call in hot path helper"
}

// grow is the sanctioned amortized-growth idiom.
func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// rare is a sanctioned fallback; the walk stops here.
//
//fpnvet:coldpath fixture cold path may allocate
func rare(sc *scratch, n int) []int {
	out := make([]int, n)
	copy(out, sc.buf)
	return out
}

// unreached is not in any hot call graph, so it may allocate freely.
func unreached(n int) []int {
	return make([]int, n)
}
