// Package decoder is a maporder fixture masquerading as a
// result-affecting package (the analyzer matches on package name).
package decoder

import "sort"

// Unannotated map ranges are findings.
func bad(m map[int]bool) []int {
	var out []int
	for k := range m { // want "range over map has nondeterministic order"
		out = append(out, k)
	}
	return out
}

// The orderless annotation opts a loop out, trailing or above.
func annotated(m map[int]int) int {
	sum := 0
	//fpnvet:orderless addition commutes
	for _, v := range m {
		sum += v
	}
	for _, v := range m { //fpnvet:orderless addition commutes
		sum += v
	}
	return sum
}

// Ranging over slices and channels is always fine.
func clean(s []int, m map[string]int) []string {
	for range s {
	}
	keys := make([]string, 0, len(m))
	//fpnvet:orderless collect-then-sort
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
