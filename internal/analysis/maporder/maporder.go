// Package maporder forbids ranging over maps in the result-affecting
// packages. Go randomizes map iteration order per range statement, so
// any map range whose body feeds results — building edge lists, seeding
// RNG streams, emitting events — makes the run irreproducible. Loops
// whose bodies are genuinely order-insensitive (pure membership tests,
// commutative accumulation, or collect-then-sort) opt out with an
// explicit //fpnvet:orderless annotation carrying the reason.
package maporder

import (
	"go/ast"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid unannotated map iteration in result-affecting packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.ResultAffecting(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Prog.HasDirective(analysis.DirOrderless, rng.Pos()) {
				return true
			}
			pass.Report(rng.Pos(),
				"range over map has nondeterministic order; iterate a sorted key slice or annotate //fpnvet:orderless <why>")
			return true
		})
	}
	return nil
}
