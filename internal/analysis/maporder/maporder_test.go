package maporder_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/maporder"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, maporder.Analyzer, "testdata/decoder")
}
