package recoverguard_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/recoverguard"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, recoverguard.Analyzer, "testdata/decoder")
}
