// Package decoder is a recoverguard fixture: guarded, delegating, and
// unguarded Decode methods.
package decoder

import "fmt"

// Recover stands in for the real decoder.Recover; the analyzer matches
// the deferred call by name.
func Recover(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("recovered: %v", r)
	}
}

type scratch struct{}

type guarded struct{}

// DecodeWith defers Recover directly: clean.
func (d *guarded) DecodeWith(sc *scratch, bit func(int) bool) (corr []bool, err error) {
	defer Recover(&err)
	panic("internal invariant")
}

// Decode delegates to the guarded DecodeWith in a single return: clean.
func (d *guarded) Decode(bit func(int) bool) ([]bool, error) {
	return d.DecodeWith(&scratch{}, bit)
}

type wrapper struct{ inner *guarded }

// Decode delegates through a receiver field: clean.
func (w wrapper) Decode(bit func(int) bool) ([]bool, error) {
	return w.inner.Decode(bit)
}

type pooled struct {
	scratch *guarded
	plain   *guarded
	sc      *scratch
}

// Decode routes between two guarded paths; every return delegates, so
// no local guard is needed: clean.
func (d *pooled) Decode(bit func(int) bool) ([]bool, error) {
	if d.sc != nil {
		return d.scratch.DecodeWith(d.sc, bit)
	}
	return d.plain.Decode(bit)
}

type leaky struct{ inner *guarded }

// Decode delegates on one branch but fabricates a result on the other,
// so a panic on the second path would escape: finding.
func (d *leaky) Decode(bit func(int) bool) ([]bool, error) { // want "Decode method does not defer decoder.Recover"
	if bit(0) {
		return d.inner.Decode(bit)
	}
	return make([]bool, 1), nil
}

type naked struct{}

// Decode has no guard and no delegation: finding.
func (d *naked) Decode(bit func(int) bool) ([]bool, error) { // want "Decode method does not defer decoder.Recover"
	if bit(0) {
		return []bool{true}, nil
	}
	panic("unguarded panic escapes")
}

type unexported struct{}

// decode is unexported, so the public-API contract does not apply.
func (d *unexported) decode(bit func(int) bool) ([]bool, error) {
	panic("internal helper")
}
