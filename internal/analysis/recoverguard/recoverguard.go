// Package recoverguard requires every exported Decode/DecodeWith method
// to convert internal panics into returned errors. The decoders' hot
// paths contain invariant panics (the blossom matcher's "stuck without
// maxCardinality", slice-shape assertions); a Monte-Carlo engine counts
// decode errors conservatively as logical failures, but an unrecovered
// panic kills a multi-hour sweep. The repo's convention is
//
//	func (d *T) DecodeWith(...) (corr []bool, err error) {
//		defer decoder.Recover(&err)
//		...
//	}
//
// so this analyzer flags any exported Decode/DecodeWith method that
// returns an error but neither defers a Recover call nor trivially
// delegates (a single return statement) to a guarded sibling method on
// the same receiver.
package recoverguard

import (
	"go/ast"

	"github.com/fpn/flagproxy/internal/analysis"
)

// Analyzer is the recoverguard check.
var Analyzer = &analysis.Analyzer{
	Name: "recoverguard",
	Doc:  "require Decode/DecodeWith methods to defer decoder.Recover or delegate to one that does",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if name != "Decode" && name != "DecodeWith" {
				continue
			}
			if !fd.Name.IsExported() || !returnsError(fd) {
				continue
			}
			if defersRecover(fd) || delegates(fd) {
				continue
			}
			pass.Report(fd.Pos(),
				"%s method does not defer decoder.Recover(&err); an internal panic would kill the whole sweep instead of counting as a decode failure", name)
		}
	}
	return nil
}

// returnsError reports whether the method's last result is an error.
func returnsError(fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last := res.List[len(res.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// defersRecover reports whether the body contains a defer of a function
// named Recover (decoder.Recover or a same-package equivalent).
func defersRecover(fd *ast.FuncDecl) bool {
	for _, stmt := range fd.Body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		switch fun := ast.Unparen(ds.Call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "Recover" {
				return true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Recover" {
				return true
			}
		}
	}
	return false
}

// delegates reports whether every return statement of the body hands
// off to a Decode/DecodeWith call rooted at the method's own receiver —
// `return d.DecodeWith(...)` (the `Decode allocates a fresh scratch`
// pattern), `return m.d.Decode(...)` (a wrapper decoder), or a branch
// over such returns (a pool routing between a scratch hot path and a
// plain fallback) — where the callees carry the recover guard.
func delegates(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	recv := fd.Recv.List[0].Names[0].Name
	returns := 0
	allDelegate := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Returns inside nested function literals are not the
			// method's own returns.
			return false
		case *ast.ReturnStmt:
			returns++
			if !delegatingReturn(n, recv) {
				allDelegate = false
			}
		}
		return allDelegate
	})
	return returns > 0 && allDelegate
}

// delegatingReturn reports whether ret is `return <recv-chain>.Decode*(...)`.
func delegatingReturn(ret *ast.ReturnStmt, recv string) bool {
	if len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Decode" && sel.Sel.Name != "DecodeWith") {
		return false
	}
	return rootIdent(sel.X) == recv
}

// rootIdent resolves the leftmost identifier of an ident/selector
// chain ("m" in m.d.inner), or "" for other expression shapes.
func rootIdent(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return rootIdent(x.X)
	}
	return ""
}
