package errdrop_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/errdrop"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, errdrop.Analyzer, "testdata/checkpoint")
}
