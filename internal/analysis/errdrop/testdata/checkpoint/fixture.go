// Package checkpoint is an errdrop fixture: dropped, discarded,
// deferred, and handled error returns.
package checkpoint

import (
	"fmt"
	"os"
	"strings"
)

func flush(f *os.File) error {
	f.Sync() // want "error result of f.Sync is silently dropped"
	defer f.Close()
	if err := f.Sync(); err != nil {
		return err
	}
	_ = f.Close() // explicit discard: fine
	return nil
}

func report(sb *strings.Builder, n int) string {
	sb.WriteString("shots=") // strings.Builder never fails: fine
	fmt.Fprintf(sb, "%d", n) // fmt is exempt
	return sb.String()
}

func noError() {
	helper() // no error result: fine
}

func helper() {}
