// Package errdrop flags silently dropped errors: a call used as a bare
// expression statement whose last result is an error. Checkpoint
// integrity depends on every Sync/Close/Flush error surfacing (a
// swallowed write error can commit a truncated resume file), so unlike
// go vet's errcheck-adjacent heuristics this is a repo-wide rule.
// Deliberate discards stay readable and legal in two forms: `_ = f()`
// (visible discard) and `defer f()` (cleanup on an already-failing
// path). Calls into package fmt are exempt — diagnostic prints to
// stderr are not checkpoint state.
package errdrop

import (
	"go/ast"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "forbid calls whose error result is silently dropped",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if fmtCall(pass, call) || neverFails(pass, call) {
				return true
			}
			if lastResultIsError(pass, call) {
				pass.Report(call.Pos(),
					"error result of %s is silently dropped; handle it or discard explicitly with _ =", calleeName(call))
			}
			return true
		})
	}
	return nil
}

// fmtCall reports whether the call targets package fmt.
func fmtCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// neverFails reports whether the call is a method on a writer
// documented to never return a non-nil error (strings.Builder,
// bytes.Buffer), whose error results exist only to satisfy io
// interfaces.
func neverFails(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Pkg.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// lastResultIsError inspects the call's type: a lone error or a tuple
// ending in error.
func lastResultIsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.TypesInfo.Types[call]
	if !ok {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	return isErrorType(last)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// calleeName renders the called function for the finding text.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
