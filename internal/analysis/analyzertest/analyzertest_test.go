package analyzertest_test

import (
	"go/ast"
	"testing"

	"github.com/fpn/flagproxy/internal/analysis"
	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
)

// marker is a synthetic analyzer exercising the harness corners: it
// reports two distinct findings on every return statement and one
// finding on every call annotated //fpnvet:bounded — so the edge
// fixture proves multi-pattern want comments, want comments that share
// a comment with a directive, and build-tag exclusion in one load.
var marker = &analysis.Analyzer{
	Name: "marker",
	Doc:  "synthetic: flags return statements twice and bounded-annotated calls once",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ReturnStmt:
					pass.Report(n.Pos(), "alpha verdict")
					pass.Report(n.Pos(), "beta verdict")
				case *ast.CallExpr:
					if pass.Prog.HasDirective(analysis.DirBounded, n.Pos()) {
						pass.Report(n.Pos(), "bounded call")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestEdgeFixture drives the harness over the edge fixture. The build-
// tagged sibling in the fixture directory redeclares two(), so the test
// passing also proves the loader and the want scan honor build tags.
func TestEdgeFixture(t *testing.T) {
	analyzertest.Run(t, marker, "testdata/edge")
}
