// Package edge exercises the harness's corner cases: several expected
// findings on one line, a want comment sharing its line (and its
// comment) with an annotation directive, and a build-tagged sibling
// file that must stay invisible to loading, the directive index and the
// want scan alike.
package edge

func two() (int, int) {
	return 1, 2 // want "alpha verdict" "beta verdict"
}

func annotated() {
	sink() //fpnvet:bounded reason lives here // want "bounded call"
}

func sink() {}
