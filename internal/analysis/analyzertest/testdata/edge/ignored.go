//go:build ignore

// This file is excluded by its build tag. If the loader ever parsed it,
// the duplicate declaration of two would fail type-checking; if the
// want scan ever read it, the stray expectation below would fail the
// test as unmatched; if the directive index ever saw it, the bounded
// annotation would not change anything visible (positions are
// file-local) but the declarations would already have broken the load.
package edge

func two() (int, int) {
	return 9, 9 // want "this expectation must never be seen"
}

func tagged() {
	sink() //fpnvet:bounded never indexed
}
