// Package analyzertest runs one analyzer over a fixture package and
// checks its findings against expectations written in the fixture
// source itself: a line that should be flagged carries a trailing
//
//	// want "regexp"
//
// comment whose pattern must match the diagnostic message reported on
// that line. A line expecting several findings lists several quoted
// patterns in one comment — // want "first" "second" — each of which
// must be matched by a distinct diagnostic. Findings without a matching
// want comment, and want comments without a matching finding, both fail
// the test — so every fixture simultaneously proves a true positive
// (the flagged line) and a clean pass (every unannotated line).
package analyzertest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/fpn/flagproxy/internal/analysis"
)

// wantRe matches the tail of a want comment: one or more quoted
// patterns. wantPat then splits the tail into the individual patterns
// (quote-aware, honoring backslash escapes inside them).
var (
	wantRe  = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)
	wantPat = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// expectation is one want comment of the fixture.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir (usually "testdata/<x>"),
// applies the analyzer, and compares findings against want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Load(analysis.LoadConfig{Dir: abs}, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, prog, abs)
	for _, d := range diags {
		if !strings.HasPrefix(d.Pos.Filename, abs+string(filepath.Separator)) {
			// Findings in dependency packages pulled in by the fixture
			// are outside the fixture's contract.
			continue
		}
		if w := matchWant(wants, d.Pos.Filename, d.Pos.Line, d.Message); w == nil {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a %s finding matching %q, got none",
				w.file, w.line, a.Name, w.pattern)
		}
	}
}

// collectWants scans the fixture package's files for want comments.
func collectWants(t *testing.T, prog *analysis.Program, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Packages {
		if !strings.HasPrefix(pkg.Dir, root) {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					for _, quoted := range wantPat.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(quoted)
						if err != nil {
							t.Fatalf("bad want comment %q: %v", c.Text, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

// matchWant finds and consumes the first unmatched expectation on the
// diagnostic's line whose pattern matches its message.
func matchWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}
