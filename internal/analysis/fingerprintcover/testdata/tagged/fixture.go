// Package tagged is a fingerprintcover fixture: a scheduling-only
// field carries the //fpnvet:sched tag and is exempt.
package tagged

import (
	"crypto/sha256"
	"fmt"
)

type Config struct {
	P float64
	//fpnvet:sched worker count regroups shards without changing streams
	Workers int
	//fpnvet:sched progress callback observes results only
	OnCommit func()
}

func (c Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "p=%v|", c.P)
	return fmt.Sprintf("%x", h.Sum(nil))
}
