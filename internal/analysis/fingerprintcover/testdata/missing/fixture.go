// Package missing is a fingerprintcover fixture: one Config field is
// hashed directly, one through a helper, and one not at all.
package missing

import (
	"crypto/sha256"
	"fmt"
	"hash"
)

type Config struct {
	P     float64
	Seed  int64
	Shots int // want "field Config.Shots is not hashed by Fingerprint"
}

func (c Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "p=%v|", c.P)
	hashSeed(h, c)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// hashSeed is a helper the coverage walk must follow.
func hashSeed(h hash.Hash, c Config) {
	fmt.Fprintf(h, "seed=%d|", c.Seed)
}
