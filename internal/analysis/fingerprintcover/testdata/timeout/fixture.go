// Package timeout is a fingerprintcover fixture: a decode-deadline
// knob is scheduling-only — a shard that trips it is re-decoded to the
// same bits through the fallback chain — so the sched tag exempts it,
// but an untagged duration field is still a finding.
package timeout

import (
	"crypto/sha256"
	"fmt"
	"time"
)

type Config struct {
	Seed int64
	//fpnvet:sched deadline reroutes hung shards through the fallback chain; committed streams stay bit-identical
	DecodeTimeout time.Duration
	SettleDelay   time.Duration // want "field Config.SettleDelay is not hashed by Fingerprint"
}

func (c Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%v|", c.Seed)
	return fmt.Sprintf("%x", h.Sum(nil))
}
