// Package embedded is a fingerprintcover fixture: fields of embedded
// structs are required transitively. Noise.P is hashed through the
// embedded path, Noise.PM is not; Arch is covered wholesale by hashing
// the embedded value itself.
package embedded

import (
	"crypto/sha256"
	"fmt"
)

type Noise struct {
	P  float64
	PM float64 // want "field Noise.PM is not hashed by Fingerprint"
}

type Arch struct {
	MaxDegree int
	Sharing   bool
}

type Config struct {
	Noise
	Arch
	Rounds int
}

func (c Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "p=%v|rounds=%d|", c.P, c.Rounds)
	fmt.Fprintf(h, "arch=%v|", c.Arch)
	return fmt.Sprintf("%x", h.Sum(nil))
}
