// Package fingerprintcover enforces checkpoint-key completeness: every
// field of a Config struct that has a Fingerprint method must be read
// somewhere in the fingerprint computation — directly in Fingerprint()
// or transitively through same-module helpers it calls (hashCode,
// hashSchedule, ...) — or be explicitly tagged //fpnvet:sched with a
// reason. A physics knob missing from the fingerprint is a silent
// checkpoint-poisoning bug: two runs with different physics would share
// a resume key and splice incompatible tallies; this analyzer makes
// adding a Config field without deciding its fingerprint status a CI
// failure. Fields of embedded structs count transitively.
package fingerprintcover

import (
	"go/ast"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

// Analyzer is the fingerprintcover check.
var Analyzer = &analysis.Analyzer{
	Name: "fingerprintcover",
	Doc:  "require every Config field to be hashed in Fingerprint() or tagged //fpnvet:sched",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Config" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkConfig(pass, ts, st)
			}
		}
	}
	return nil
}

// checkConfig verifies one Config struct against its Fingerprint method.
func checkConfig(pass *analysis.Pass, ts *ast.TypeSpec, st *ast.StructType) {
	obj, ok := pass.Pkg.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	fp := lookupMethod(named, "Fingerprint")
	if fp == nil {
		return
	}
	covered := coveredFields(pass, fp)
	reportUncovered(pass, named, covered, map[*types.Named]bool{})
}

// lookupMethod finds a method by name on the named type (value or
// pointer receiver).
func lookupMethod(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// coveredFields collects every struct field object selected anywhere in
// the code statically reachable from Fingerprint. Helper functions the
// fingerprint delegates to (hashCode(h, cfg), hashSchedule(h, s)) are
// part of the reachable set, so fields they read count as covered.
func coveredFields(pass *analysis.Pass, fp *types.Func) map[*types.Var]bool {
	covered := map[*types.Var]bool{}
	pass.Prog.Reachable([]*types.Func{fp}, func(fn *types.Func, decl *ast.FuncDecl, pkg *analysis.Package) bool {
		ast.Inspect(decl, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pkg.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			// An embedded-path selection (cfg.X reaching through an
			// embedded struct) records every implicit step, so mark
			// the final field and let reportUncovered handle nesting.
			covered[s.Obj().(*types.Var)] = true
			return true
		})
		return true
	})
	return covered
}

// reportUncovered walks the Config struct's fields — recursing into
// embedded structs declared in this module — and reports any field that
// is neither covered nor tagged //fpnvet:sched.
func reportUncovered(pass *analysis.Pass, named *types.Named, covered map[*types.Var]bool, seen map[*types.Named]bool) {
	if seen[named] {
		return
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() {
			if en, ok := derefNamed(f.Type()); ok {
				// The embedded struct's own fields must each be
				// covered; covering the embedded value as a whole
				// (hashing cfg.Inner wholesale) also suffices.
				if !covered[f] {
					reportUncovered(pass, en, covered, seen)
				}
				continue
			}
		}
		if covered[f] {
			continue
		}
		if pass.Prog.HasDirective(analysis.DirSched, f.Pos()) {
			continue
		}
		pass.Report(f.Pos(),
			"field %s.%s is not hashed by Fingerprint(); hash it or tag //fpnvet:sched <why> if it cannot affect results",
			named.Obj().Name(), f.Name())
	}
}

// derefNamed unwraps *T / T to the named struct type, if any.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	return n, true
}
