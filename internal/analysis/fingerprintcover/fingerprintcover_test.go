package fingerprintcover_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/fingerprintcover"
)

// TestMissingField proves a Config field absent from Fingerprint() is a
// finding even when other fields are hashed through helpers.
func TestMissingField(t *testing.T) {
	analyzertest.Run(t, fingerprintcover.Analyzer, "testdata/missing")
}

// TestTaggedField proves //fpnvet:sched exempts scheduling-only fields.
func TestTaggedField(t *testing.T) {
	analyzertest.Run(t, fingerprintcover.Analyzer, "testdata/tagged")
}

// TestTimeoutField proves a sched-tagged time.Duration knob (the shape
// of Config.DecodeTimeout) passes while an untagged sibling of the same
// type is a finding — the tag, not the type, is what exempts it.
func TestTimeoutField(t *testing.T) {
	analyzertest.Run(t, fingerprintcover.Analyzer, "testdata/timeout")
}

// TestEmbeddedStruct proves embedded-struct fields are required
// transitively, and that hashing the embedded value wholesale covers
// its fields.
func TestEmbeddedStruct(t *testing.T) {
	analyzertest.Run(t, fingerprintcover.Analyzer, "testdata/embedded")
}
