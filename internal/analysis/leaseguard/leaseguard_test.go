package leaseguard_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/leaseguard"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, leaseguard.Analyzer, "testdata/fabric")
}

func TestRTDFixture(t *testing.T) {
	analyzertest.Run(t, leaseguard.Analyzer, "testdata/rtd")
}
