// Package fabric is a leaseguard fixture masquerading as the real
// fabric package (the analyzer matches on package name). It pairs true
// positives (unannotated clock reads) with sanctioned liveness sites
// and clock-free time handling that must stay clean.
package fabric

import "time"

// Unannotated clock samples are findings wherever they appear.
func expiry(granted time.Time) bool {
	now := time.Now() // want "wall-clock call time.Now"
	return granted.Before(now)
}

func pace() {
	time.Sleep(time.Second)            // want "wall-clock call time.Sleep"
	elapsed := time.Since(time.Time{}) // want "wall-clock call time.Since"
	_ = elapsed
}

// Clock reads inside function literals are findings too.
var _ = func() {
	_ = time.Until(time.Time{}) // want "wall-clock call time.Until"
	<-time.After(time.Second)   // want "wall-clock call time.After"
	_ = time.NewTimer(0)        // want "wall-clock call time.NewTimer"
	_ = time.NewTicker(1)       // want "wall-clock call time.NewTicker"
}

// A statement-level annotation sanctions one liveness site, trailing or
// above.
func sanctionedSite() time.Time {
	//fpnvet:wallclock default clock behind the injectable seam
	t := time.Now()
	_ = time.Now() //fpnvet:wallclock lease TTL bookkeeping only
	return t
}

// A function-level annotation sanctions the whole body — the shape of
// the worker's wait helper.
//
//fpnvet:wallclock polling cadence is liveness, not results
func sanctionedFunc(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
	time.Sleep(d)
}

// Pure duration values, arithmetic, formatting and parsing never touch
// the clock and stay clean.
func cleanDurations(ttl time.Duration) (time.Duration, string, error) {
	hb := ttl / 3
	d, err := time.ParseDuration("30s")
	if err != nil {
		return 0, "", err
	}
	return hb + d + 5*time.Millisecond, ttl.String(), nil
}

// Method calls on time values (not package-qualified clock reads) are
// clean: they operate on an instant the caller already holds.
func cleanInstants(t time.Time, ttl time.Duration) time.Time {
	return t.Add(ttl)
}
