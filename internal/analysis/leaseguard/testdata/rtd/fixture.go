// Package rtd is a leaseguard fixture masquerading as the real rtd
// package (the analyzer matches on package name). It mirrors the
// service's clock-seam idioms — the injectable Clock interface, the
// annotated wall-clock default behind it, latency accounting and
// deadline arming through the seam — next to the unannotated clock
// reads each of those idioms exists to prevent.
package rtd

import "time"

// Clock is the seam: everything time-shaped flows through it.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// wallClock is the production Clock, the one sanctioned home of the
// machine clock.
type wallClock struct{}

//fpnvet:wallclock default clock behind the injectable seam
func (wallClock) Now() time.Time { return time.Now() }

//fpnvet:wallclock default clock behind the injectable seam
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

type server struct{ clock Clock }

// Latency accounting goes through the seam; interface method calls are
// not package-qualified clock reads and stay clean.
func (s *server) observe(start time.Time) time.Duration {
	return s.clock.Now().Sub(start) // clean: seam call
}

func (s *server) observeBad(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock call time.Since"
}

// Deadline arming: seam-derived instants are clean, raw samples are not.
func (s *server) deadline(d time.Duration) time.Time {
	return s.clock.Now().Add(d) // clean: seam call plus pure arithmetic
}

func (s *server) deadlineBad(d time.Duration) time.Time {
	return time.Now().Add(d) // want "wall-clock call time.Now"
}

// Decode-attempt timers arm through the seam too.
func (s *server) decodeTimer(d time.Duration) <-chan time.Time {
	return s.clock.After(d) // clean: seam call
}

func rawTimer(d time.Duration) <-chan time.Time {
	return time.After(d) // want "wall-clock call time.After"
}

// Periodic stats flushing must not grow its own scheduler.
func statsLoop(flush func()) {
	go func() {
		for range time.Tick(time.Second) { // want "wall-clock call time.Tick"
			flush()
		}
	}()
	_ = time.AfterFunc(time.Minute, flush) // want "wall-clock call time.AfterFunc"
}

// Timeout configuration is pure duration values, never the clock.
func timeouts(read, write time.Duration) time.Duration {
	if read <= 0 {
		read = 30 * time.Second
	}
	if write <= 0 {
		write = 30 * time.Second
	}
	return read + write
}
