// Package leaseguard keeps wall-clock reads out of the distributed
// sweep fabric's and the online decode service's result paths. Their
// bit-identity proofs rest on time being pure scheduling: lease expiry
// and decode deadlines flow through injectable clocks, retry budgets
// are fixed attempt counts, and nothing a merged result or a committed
// correction depends on ever reads time.Now. This analyzer enforces the
// boundary mechanically in packages fabric and rtd:
//
//   - every package-qualified call into the clock-bearing part of the
//     time package (Now, Since, Until, After, AfterFunc, Tick,
//     NewTicker, NewTimer, Sleep) is a finding;
//   - a call site (or its whole enclosing function) opts out with
//     //fpnvet:wallclock <why>, reserved for the handful of sanctioned
//     liveness sites: the default clock constructor behind the
//     injectable seam, and polling/heartbeat pacing.
//
// Pure-value time.Duration arithmetic and formatting stay free — only
// the functions that sample or schedule against the machine's clock are
// guarded.
package leaseguard

import (
	"go/ast"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

// Analyzer is the leaseguard check.
var Analyzer = &analysis.Analyzer{
	Name: "leaseguard",
	Doc:  "forbid unannotated wall-clock reads in the sweep fabric and the online decode service",
	Run:  run,
}

// guarded lists the packages whose result paths must stay clock-free.
var guarded = map[string]bool{
	"fabric": true,
	"rtd":    true,
}

// clockFns are the time-package functions that sample or schedule
// against the wall clock (or the runtime timer heap, which amounts to
// the same hazard: behavior keyed to real elapsed time).
var clockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

func run(pass *analysis.Pass) error {
	if !guarded[pass.Pkg.Name] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		// stack mirrors the Inspect traversal (every non-nil node pushed,
		// every nil pops) so the enclosing function of a call is at hand.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, ok := packageQualifier(pass, sel); !ok || path != "time" {
				return true
			}
			if !clockFns[sel.Sel.Name] {
				return true
			}
			if pass.Prog.HasDirective(analysis.DirWallclock, call.Pos()) {
				return true
			}
			if fd := enclosingFunc(stack); fd != nil && pass.Prog.FuncHasDirective(analysis.DirWallclock, fd) {
				return true
			}
			pass.Report(call.Pos(),
				"wall-clock call time.%s in package %s; inject the clock (fabric Options.Now / WorkerOptions.Sleep, rtd Options.Clock) or annotate the liveness site with //fpnvet:wallclock <why>",
				sel.Sel.Name, pass.Pkg.Name)
			return true
		})
	}
	return nil
}

// enclosingFunc returns the innermost function declaration on the
// traversal stack, if any.
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// packageQualifier resolves sel's X to an imported package path, if the
// selector is a package-qualified reference.
func packageQualifier(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
