package analysis

import (
	"go/ast"
	"go/types"
)

// Callees returns every statically resolvable function or method called
// inside node: direct calls to package-level functions and calls to
// methods on concrete receivers, looked up through the type-checker.
// Dynamic calls (interface methods, function-typed fields and
// variables) resolve to no *types.Func declaration and are skipped —
// analyzers that need them must reason about the concrete values
// separately.
func (pkg *Package) Callees(node ast.Node) []*types.Func {
	var out []*types.Func
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := pkg.calleeOf(call); fn != nil {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// CalleeOf resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic and built-in calls — the per-site variant
// of Callees, for analyzers that track facts at individual call sites.
func (pkg *Package) CalleeOf(call *ast.CallExpr) *types.Func { return pkg.calleeOf(call) }

// calleeOf resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic and built-in calls.
func (pkg *Package) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...)
		if fn, ok := pkg.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Reachable walks the static call graph from the given roots,
// visiting every function of the loaded program reachable from them
// (including the roots themselves). Visit is called once per reached
// declaration and returns whether to descend into that function's
// callees; interface dispatch and function values are never followed.
func (p *Program) Reachable(roots []*types.Func, visit func(fn *types.Func, decl *ast.FuncDecl, pkg *Package) bool) {
	seen := map[*types.Func]bool{}
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		decl, pkg := p.DeclOf(fn)
		if decl == nil || decl.Body == nil {
			return
		}
		if !visit(fn, decl, pkg) {
			return
		}
		for _, callee := range pkg.Callees(decl.Body) {
			walk(callee)
		}
	}
	for _, r := range roots {
		walk(r)
	}
}
