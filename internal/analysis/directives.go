package analysis

// Annotation directives. Three comment forms let code opt in to or out
// of specific analyzers:
//
//	//fpn:hotpath              — on a function declaration: this function
//	                             is a decode hot-path root; hotalloc
//	                             walks its whole call graph.
//	//fpnvet:orderless <why>   — on (or immediately above) a statement
//	                             that ranges over a map: the loop body is
//	                             order-insensitive, so maporder skips it.
//	//fpnvet:sched <why>       — on a struct field: the field only
//	                             shapes scheduling/IO, never results, so
//	                             fingerprintcover does not require it in
//	                             the checkpoint fingerprint.
//	//fpnvet:coldpath <why>    — on a function: a sanctioned rare
//	                             fallback (OSD-0, residual repair) that
//	                             may allocate; hotalloc prunes its whole
//	                             subgraph.
//	//fpnvet:wallclock <why>   — on a statement or function in the fabric
//	                             package: this clock read is pure
//	                             liveness (polling cadence, lease TTL
//	                             bookkeeping), never results; leaseguard
//	                             skips it.
//
// Directives are matched by file position: a directive covers the source
// line it sits on and the line directly below it, which handles both
// end-of-line and above-the-statement placement.

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	DirHotpath   = "fpn:hotpath"
	DirOrderless = "fpnvet:orderless"
	DirSched     = "fpnvet:sched"
	DirColdpath  = "fpnvet:coldpath"
	DirWallclock = "fpnvet:wallclock"
)

// noteKey identifies one source line of one file.
type noteKey struct {
	file string
	line int
}

// noteIndex maps (file, line) to the directives present there.
type noteIndex struct {
	at map[noteKey][]string
}

// indexNotes scans every comment of every loaded file for directives.
func indexNotes(prog *Program) *noteIndex {
	idx := &noteIndex{at: map[noteKey][]string{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					name, ok := directiveName(text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					k := noteKey{file: pos.Filename, line: pos.Line}
					idx.at[k] = append(idx.at[k], name)
				}
			}
		}
	}
	return idx
}

// directiveName extracts the directive identifier from a comment body,
// if any. Directives are machine comments: no space after "//".
func directiveName(text string) (string, bool) {
	for _, d := range []string{DirHotpath, DirOrderless, DirSched, DirColdpath, DirWallclock} {
		if text == d || strings.HasPrefix(text, d+" ") {
			return d, true
		}
	}
	return "", false
}

// has reports whether directive name is attached to the given line of
// file (on the line itself, e.g. a trailing comment, or the line above).
func (idx *noteIndex) has(name, file string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, d := range idx.at[noteKey{file: file, line: l}] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// HasDirective reports whether the directive is attached to the source
// line containing pos (or the line above it).
func (p *Program) HasDirective(name string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.notes.has(name, position.Filename, position.Line)
}

// FuncHasDirective reports whether a function declaration carries the
// directive in its doc comment or on its declaration line.
func (p *Program) FuncHasDirective(name string, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if d, ok := directiveName(strings.TrimPrefix(c.Text, "//")); ok && d == name {
				return true
			}
		}
	}
	return p.HasDirective(name, fd.Pos())
}
