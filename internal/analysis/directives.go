package analysis

// Annotation directives. Comment forms let code opt in to or out of
// specific analyzers:
//
//	//fpn:hotpath              — on a function declaration: this function
//	                             is a decode hot-path root; hotalloc
//	                             walks its whole call graph.
//	//fpnvet:orderless <why>   — on (or immediately above) a statement
//	                             that ranges over a map: the loop body is
//	                             order-insensitive, so maporder skips it.
//	//fpnvet:sched <why>       — on a struct field: the field only
//	                             shapes scheduling/IO, never results, so
//	                             fingerprintcover does not require it in
//	                             the checkpoint fingerprint.
//	//fpnvet:coldpath <why>    — on a function: a sanctioned rare
//	                             fallback (OSD-0, residual repair) that
//	                             may allocate; hotalloc prunes its whole
//	                             subgraph.
//	//fpnvet:wallclock <why>   — on a statement or function in the fabric
//	                             or rtd packages: this clock read is pure
//	                             liveness (polling cadence, lease TTL
//	                             bookkeeping), never results; leaseguard
//	                             skips it.
//	//fpnvet:guardedby <mu>    — on a struct field: the field may only be
//	                             read or written while the named sibling
//	                             mutex is held; guardedby enforces it.
//	//fpnvet:unguarded <why>   — on a struct field of a mutex-bearing
//	                             struct: the field needs no lock
//	                             (immutable after construction, internally
//	                             synchronized, …); guardedby skips it.
//	//fpnvet:bounded <why>     — on a go statement or a loop: the spawned
//	                             goroutine (or the loop) provably
//	                             terminates for reasons goexit cannot see.
//	//fpnvet:nodeadline <why>  — on a blocking network read/write (or its
//	                             enclosing function): the wait is bounded
//	                             by something netdeadline cannot trace
//	                             (a caller's context, the serving
//	                             http.Server's timeouts).
//
// Directives are matched by file position: a trailing directive (code
// precedes it on the line) covers exactly its own line, while an
// own-line directive comment covers the line directly below it — the
// two sanctioned placements, end-of-line and above-the-statement. A
// trailing directive deliberately does not leak onto the next line, so
// annotating one struct field never silently annotates its neighbor.

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	DirHotpath    = "fpn:hotpath"
	DirOrderless  = "fpnvet:orderless"
	DirSched      = "fpnvet:sched"
	DirColdpath   = "fpnvet:coldpath"
	DirWallclock  = "fpnvet:wallclock"
	DirGuardedBy  = "fpnvet:guardedby"
	DirUnguarded  = "fpnvet:unguarded"
	DirBounded    = "fpnvet:bounded"
	DirNodeadline = "fpnvet:nodeadline"
)

// directiveNames lists every recognized directive, longest-match is not
// needed because no name is a prefix of another.
var directiveNames = []string{
	DirHotpath, DirOrderless, DirSched, DirColdpath, DirWallclock,
	DirGuardedBy, DirUnguarded, DirBounded, DirNodeadline,
}

// noteKey identifies one source line of one file.
type noteKey struct {
	file string
	line int
}

// note is one directive occurrence: its name, the argument text that
// followed it (the first word of the free-text tail — the mutex name for
// guardedby, the start of the reason for the others), and whether the
// comment trails code on its line.
type note struct {
	name     string
	arg      string
	trailing bool
}

// noteIndex maps (file, line) to the directives present there.
type noteIndex struct {
	at map[noteKey][]note
}

// indexNotes scans every comment of every loaded file for directives.
func indexNotes(prog *Program) *noteIndex {
	idx := &noteIndex{at: map[noteKey][]note{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			code := codeLines(prog.Fset, f)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					name, arg, ok := parseDirective(text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					k := noteKey{file: pos.Filename, line: pos.Line}
					idx.at[k] = append(idx.at[k], note{name: name, arg: arg, trailing: code[pos.Line]})
				}
			}
		}
	}
	return idx
}

// codeLines reports which source lines of f carry non-comment tokens, so
// trailing directive comments can be told apart from own-line ones.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}

// parseDirective extracts the directive identifier and its first
// argument word from a comment body, if any. Directives are machine
// comments: no space after "//".
func parseDirective(text string) (name, arg string, ok bool) {
	for _, d := range directiveNames {
		if text == d {
			return d, "", true
		}
		if rest, found := strings.CutPrefix(text, d+" "); found {
			rest = strings.TrimSpace(rest)
			if i := strings.IndexByte(rest, ' '); i >= 0 {
				rest = rest[:i]
			}
			return d, rest, true
		}
	}
	return "", "", false
}

// directiveName extracts just the directive identifier, for callers that
// do not care about arguments.
func directiveName(text string) (string, bool) {
	name, _, ok := parseDirective(text)
	return name, ok
}

// find returns the first directive with the given name attached to the
// line of file: a directive on the line itself (trailing comment), or an
// own-line directive comment on the line above.
func (idx *noteIndex) find(name, file string, line int) (note, bool) {
	for _, d := range idx.at[noteKey{file: file, line: line}] {
		if d.name == name {
			return d, true
		}
	}
	for _, d := range idx.at[noteKey{file: file, line: line - 1}] {
		if d.name == name && !d.trailing {
			return d, true
		}
	}
	return note{}, false
}

// has reports whether directive name is attached to the given line of
// file (on the line itself, e.g. a trailing comment, or the line above).
func (idx *noteIndex) has(name, file string, line int) bool {
	_, ok := idx.find(name, file, line)
	return ok
}

// HasDirective reports whether the directive is attached to the source
// line containing pos (or the line above it).
func (p *Program) HasDirective(name string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.notes.has(name, position.Filename, position.Line)
}

// DirectiveArg returns the first argument word of the directive attached
// to the source line containing pos (or the line above it) — for
// guardedby, the name of the guarding mutex field. ok is false when the
// directive is absent.
func (p *Program) DirectiveArg(name string, pos token.Pos) (arg string, ok bool) {
	position := p.Fset.Position(pos)
	n, ok := p.notes.find(name, position.Filename, position.Line)
	return n.arg, ok
}

// FuncHasDirective reports whether a function declaration carries the
// directive in its doc comment or on its declaration line.
func (p *Program) FuncHasDirective(name string, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if d, ok := directiveName(strings.TrimPrefix(c.Text, "//")); ok && d == name {
				return true
			}
		}
	}
	return p.HasDirective(name, fd.Pos())
}
