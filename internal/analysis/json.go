package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable rendering of one finding. File
// is module-root-relative with forward slashes so output is stable
// across checkouts and operating systems — CI can diff two runs
// directly.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array (empty slice, not
// null, when there are none). File paths are made relative to moduleRoot
// when they lie under it.
func WriteJSON(w io.Writer, moduleRoot string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if moduleRoot != "" {
			if rel, err := filepath.Rel(moduleRoot, file); err == nil && filepath.IsLocal(rel) {
				file = rel
			}
		}
		out = append(out, jsonDiagnostic{
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
