// Package sim is a goexit fixture masquerading as a result-affecting
// package (the analyzer matches on package name). True positives —
// exit-less infinite loops, WaitGroup misuse inside goroutines — sit
// next to every sanctioned shape: for/select workers with done arms,
// condition- and range-bounded loops, break exits, the Add-before-go /
// deferred-Done contract, and //fpnvet:bounded escapes.
package sim

import (
	"context"
	"sync"
)

// The canonical worker: for/select with a ctx.Done return arm.
func spin(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// An exit-less infinite loop in a goroutine literal.
func leak(jobs chan int) {
	go func() {
		for { // want "infinite loop in goroutine-reachable goroutine literal has no return or break"
			<-jobs
		}
	}()
}

// Direct-call spawns are checked at the callee's declaration.
func run(ctx context.Context) {
	go pump(ctx)
}

func pump(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

func runBad() {
	go drip()
}

func drip() {
	for { // want "infinite loop in goroutine-reachable drip has no return or break"
	}
}

// Condition- and range-bounded loops exit with their condition.
func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
		for range make([]int, n) {
		}
	}()
}

// A break is an exit path.
func poll(stop chan struct{}) {
	go func() {
		for {
			if stopped(stop) {
				break
			}
		}
	}()
}

func stopped(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// A bounded annotation on the go statement sanctions the whole spawn.
func gen(out chan int) {
	//fpnvet:bounded the receiver reads exactly once then both sides drop the channel
	go func() {
		for {
			out <- 1
		}
	}()
}

// A bounded annotation on the loop itself sanctions just that loop.
func churn(c chan int) {
	go func() {
		//fpnvet:bounded upstream closes c after one element in every caller
		for {
			<-c
		}
	}()
}

// The WaitGroup contract, done right: Add before go, deferred Done.
func fan(wg *sync.WaitGroup, jobs []int) {
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

// Add inside the goroutine races Wait.
func addInside(wg *sync.WaitGroup) {
	go func() { // want "goroutine calls wg.Done but no wg.Add precedes this go statement"
		wg.Add(1) // want "wg.Add inside the spawned goroutine races Wait"
		defer wg.Done()
	}()
}

// A non-deferred Done leaks the count on panic.
func eagerDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		wg.Done() // want "wg.Done in a spawned goroutine must be deferred"
	}()
}

// Done with no Add anywhere before the spawn.
func missingAdd(wg *sync.WaitGroup) {
	go func() { // want "goroutine calls wg.Done but no wg.Add precedes this go statement"
		defer wg.Done()
	}()
}

// The struct-worker shape: Add in the spawner, deferred Done in the
// direct-call worker body, exit through the stop channel.
type pool struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

func (p *pool) start() {
	p.wg.Add(1)
	go p.loop()
}

func (p *pool) loop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		}
	}
}
