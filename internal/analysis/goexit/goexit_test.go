package goexit_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/goexit"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, goexit.Analyzer, "testdata/sim")
}
