// Package goexit proves that spawned goroutines in the result-affecting
// and service packages can terminate. A goroutine that loops forever
// with no exit path outlives Drain, pins memory, and — in the worst case
// seen in long-running decode services — keeps publishing into channels
// nobody reads. Two invariants are enforced:
//
//  1. Every infinite loop (`for { … }` with no condition) that can run
//     on a spawned goroutine must contain a lexical exit — a return or a
//     break — or carry //fpnvet:bounded <why> (on the loop or the
//     enclosing function). The usual worker shape, a for/select with a
//     `case <-ctx.Done(): return` or `case <-stop: return` arm,
//     satisfies this by construction; conditional and range loops are
//     considered bounded by their condition.
//
//  2. Every sync.WaitGroup counted goroutine follows the only
//     race-free shape: wg.Add lexically before the go statement in the
//     spawner, and wg.Done deferred inside the spawned body. Add inside
//     the goroutine races Wait; a non-deferred Done is skipped on panic
//     even though recoverguard converts the panic to an error.
//
// The goroutine-side set is computed program-wide: direct `go f()`
// callees, function literals under go statements, address-taken
// functions (handlers run on the server's goroutines), and everything
// they transitively call through static calls.
package goexit

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goexit",
	Doc: "spawned goroutines in result-affecting packages must have a provable exit path, " +
		"and WaitGroups must pair Add-before-go with a deferred Done inside the goroutine",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.ResultAffecting(pass.Pkg) {
		return nil
	}
	goReach := pass.Prog.GoroutineReachable()
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func)

			// Invariant 1 for declared functions that run goroutine-side.
			if fn != nil && goReach[fn] && !pass.Prog.FuncHasDirective(analysis.DirBounded, fd) {
				checkLoops(pass, fd.Body, fd.Name.Name)
			}

			// Go statements: literal bodies (not covered by goReach, which
			// tracks declarations) and WaitGroup pairing.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGo(pass, fd, gs)
				return true
			})
		}
	}
	return nil
}

// checkGo enforces both invariants at one go statement.
func checkGo(pass *analysis.Pass, enclosing *ast.FuncDecl, gs *ast.GoStmt) {
	if pass.Prog.HasDirective(analysis.DirBounded, gs.Go) {
		return
	}
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
		checkLoops(pass, body, "goroutine literal")
	} else if callee := pass.Pkg.CalleeOf(gs.Call); callee != nil {
		// Loop checking for the callee happens at its declaration via
		// GoroutineReachable; here only the WaitGroup contract needs its
		// body.
		if decl, _ := pass.Prog.DeclOf(callee); decl != nil {
			body = decl.Body
		}
	}
	if body == nil {
		return
	}
	checkWaitGroup(pass, enclosing, gs, body)
}

// checkLoops reports every condition-less for loop in body (outside
// nested function literals) with no lexical return or break and no
// //fpnvet:bounded annotation.
func checkLoops(pass *analysis.Pass, body *ast.BlockStmt, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if pass.Prog.HasDirective(analysis.DirBounded, loop.For) {
			return true
		}
		if hasLexicalExit(loop.Body) {
			return true
		}
		pass.Report(loop.For, "infinite loop in goroutine-reachable %s has no return or break; add an exit arm (e.g. case <-ctx.Done(): return) or annotate //fpnvet:bounded <why>", where)
		return true
	})
}

// hasLexicalExit reports whether the loop body contains a return or
// break outside nested function literals and nested loops (a break in a
// nested loop exits that loop, not this one; a labeled break is honored
// wherever it appears because it names its target).
func hasLexicalExit(body *ast.BlockStmt) bool {
	found := false
	var scan func(n ast.Node, inNestedLoop bool)
	scan = func(n ast.Node, inNestedLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.BranchStmt:
				switch {
				case x.Tok == token.BREAK && x.Label != nil:
					found = true
				case x.Tok == token.BREAK && !inNestedLoop:
					// An unlabeled break binds to the innermost for,
					// switch, or select; in a switch/select it does not
					// exit the loop. Conservatively accept only breaks
					// not nested under an inner for — the for/select
					// worker shape uses returns, not breaks, so this
					// mainly covers plain `for { if done { break } }`.
					found = true
				case x.Tok == token.GOTO:
					found = true
				}
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				if m != n {
					scan(m, true)
					return false
				}
			}
			return true
		})
	}
	scan(body, false)
	return found
}

// checkWaitGroup enforces the Add-before-go / deferred-Done-inside
// contract for every WaitGroup the spawned body calls Done on, and bans
// Add inside the spawned body.
func checkWaitGroup(pass *analysis.Pass, enclosing *ast.FuncDecl, gs *ast.GoStmt, body *ast.BlockStmt) {
	type doneCall struct {
		call     *ast.CallExpr
		key      string
		deferred bool
	}
	var dones []doneCall
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if key, ok := wgCallKey(pass.Pkg, x.Call, "Done"); ok {
				dones = append(dones, doneCall{x.Call, key, true})
				return false
			}
		case *ast.CallExpr:
			if key, ok := wgCallKey(pass.Pkg, x, "Add"); ok {
				pass.Report(x.Pos(), "%s.Add inside the spawned goroutine races Wait; call Add before the go statement", key)
			}
			if key, ok := wgCallKey(pass.Pkg, x, "Done"); ok {
				dones = append(dones, doneCall{x, key, false})
			}
		}
		return true
	})
	for _, d := range dones {
		if !d.deferred {
			pass.Report(d.call.Pos(), "%s.Done in a spawned goroutine must be deferred so a panic cannot leak the count", d.key)
		}
		if !addBefore(pass.Pkg, enclosing, gs, d.key) {
			pass.Report(gs.Go, "goroutine calls %s.Done but no %s.Add precedes this go statement", d.key, d.key)
		}
	}
}

// wgCallKey matches a call of the form <expr>.<method>(…) on a
// sync.WaitGroup and returns the printed path of the receiver.
func wgCallKey(pkg *analysis.Package, call *ast.CallExpr, method string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	tv, ok := pkg.TypesInfo.Types[sel.X]
	if !ok || !isWaitGroup(tv.Type) {
		return "", false
	}
	return types.ExprString(ast.Unparen(sel.X)), true
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// addBefore reports whether an Add call on the same WaitGroup path
// appears lexically before the go statement in the spawning function.
// For `go s.worker()` the spawner and the body may name the receiver
// differently; the worker idiom used here keeps them identical
// (s.workersWG in both), which is also the readable convention.
func addBefore(pkg *analysis.Package, enclosing *ast.FuncDecl, gs *ast.GoStmt, key string) bool {
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= gs.Go {
			return !found
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if k, ok := wgCallKey(pkg, call, "Add"); ok && k == key {
				found = true
			}
		}
		return !found
	})
	return found
}
