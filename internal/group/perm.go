// Package group provides the finite-group machinery used to generate
// hyperbolic {r,s} tilings: permutation arithmetic, BFS enumeration of a
// group from generators, projective linear groups PSL/PGL(2,q) as
// permutation groups on the projective line, and the search for
// (2,r,s)-generating pairs that the tiling package turns into closed
// combinatorial maps. It replaces the paper's use of the GAP
// computer-algebra system.
package group

import (
	"fmt"
	"strconv"
	"strings"
)

// Perm is a permutation of {0..n-1}; p[i] is the image of i.
type Perm []int

// Identity returns the identity permutation on n points.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// FromCycles builds a permutation on n points from disjoint cycles.
func FromCycles(n int, cycles [][]int) Perm {
	p := Identity(n)
	for _, c := range cycles {
		for i, x := range c {
			y := c[(i+1)%len(c)]
			if x < 0 || x >= n {
				panic(fmt.Sprintf("group: cycle point %d out of range", x))
			}
			p[x] = y
		}
	}
	return p
}

// Mul returns the composition p∘q: (p.Mul(q))(i) = p(q(i)).
func (p Perm) Mul(q Perm) Perm {
	if len(p) != len(q) {
		panic("group: degree mismatch in Mul")
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Inverse returns the inverse permutation.
func (p Perm) Inverse() Perm {
	r := make(Perm, len(p))
	for i, v := range p {
		r[v] = i
	}
	return r
}

// IsIdentity reports whether p fixes every point.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Order returns the multiplicative order of p.
func (p Perm) Order() int {
	order := 1
	seen := make([]bool, len(p))
	for i := range p {
		if seen[i] {
			continue
		}
		clen := 0
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			clen++
		}
		order = lcm(order, clen)
	}
	return order
}

// Cycles returns the cycle decomposition including fixed points.
func (p Perm) Cycles() [][]int {
	var cycles [][]int
	seen := make([]bool, len(p))
	for i := range p {
		if seen[i] {
			continue
		}
		var c []int
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			c = append(c, j)
		}
		cycles = append(cycles, c)
	}
	return cycles
}

// CycleType returns the multiset of cycle lengths, sorted descending is
// not guaranteed; it maps length → count.
func (p Perm) CycleType() map[int]int {
	ct := make(map[int]int)
	for _, c := range p.Cycles() {
		ct[len(c)]++
	}
	return ct
}

// AllCyclesLen reports whether every cycle of p has exactly length l.
func (p Perm) AllCyclesLen(l int) bool {
	seen := make([]bool, len(p))
	for i := range p {
		if seen[i] {
			continue
		}
		clen := 0
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			clen++
		}
		if clen != l {
			return false
		}
	}
	return true
}

// Key returns a compact string key for map storage.
func (p Perm) Key() string {
	var sb strings.Builder
	sb.Grow(len(p) * 3)
	for _, v := range p {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte(',')
	}
	return sb.String()
}

// Pow returns p raised to the k-th power (k may be negative).
func (p Perm) Pow(k int) Perm {
	n := len(p)
	base := p
	if k < 0 {
		base = p.Inverse()
		k = -k
	}
	r := Identity(n)
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			r = r.Mul(base)
		}
		base = base.Mul(base)
	}
	return r
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
