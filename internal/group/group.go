package group

import (
	"fmt"
	"sort"
)

// Group is a finite permutation group enumerated as an explicit element
// list. Element 0 is always the identity.
type Group struct {
	Name     string
	Elements []Perm
	index    map[string]int
	gens     []Perm
}

// Generate enumerates the closure of the generators by breadth-first
// multiplication. It fails if the group exceeds limit elements.
func Generate(name string, gens []Perm, limit int) (*Group, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("group: no generators")
	}
	deg := len(gens[0])
	for _, g := range gens {
		if len(g) != deg {
			return nil, fmt.Errorf("group: generator degree mismatch")
		}
	}
	g := &Group{Name: name, index: make(map[string]int), gens: gens}
	id := Identity(deg)
	g.Elements = append(g.Elements, id)
	g.index[id.Key()] = 0
	frontier := []Perm{id}
	for len(frontier) > 0 {
		var next []Perm
		for _, e := range frontier {
			for _, gen := range gens {
				prod := gen.Mul(e)
				k := prod.Key()
				if _, ok := g.index[k]; !ok {
					if len(g.Elements) >= limit {
						return nil, fmt.Errorf("group %s: exceeded limit %d", name, limit)
					}
					g.index[k] = len(g.Elements)
					g.Elements = append(g.Elements, prod)
					next = append(next, prod)
				}
			}
		}
		frontier = next
	}
	return g, nil
}

// Order returns the number of group elements.
func (g *Group) Order() int { return len(g.Elements) }

// Contains reports whether p is an element of g.
func (g *Group) Contains(p Perm) bool {
	_, ok := g.index[p.Key()]
	return ok
}

// ElementsOfOrder returns all elements with the exact given order.
func (g *Group) ElementsOfOrder(k int) []Perm {
	var out []Perm
	for _, e := range g.Elements {
		if e.Order() == k {
			out = append(out, e)
		}
	}
	return out
}

// OrderHistogram returns sorted (order, count) pairs of element orders.
func (g *Group) OrderHistogram() [][2]int {
	m := map[int]int{}
	for _, e := range g.Elements {
		m[e.Order()]++
	}
	keys := make([]int, 0, len(m))
	//fpnvet:orderless collect-then-sort: the histogram is sorted by order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][2]int, len(keys))
	for i, k := range keys {
		out[i] = [2]int{k, m[k]}
	}
	return out
}

// SubgroupSize returns the order of ⟨gens⟩ inside this group's parent
// symmetric group (it does not require the generators to lie in g).
func SubgroupSize(gens []Perm, limit int) (int, error) {
	sub, err := Generate("sub", gens, limit)
	if err != nil {
		return 0, err
	}
	return sub.Order(), nil
}
