package group

import "fmt"

// ffield is a small finite field F_q with q = p^e, represented by
// Zech-style tables only for prime q here; prime powers 4, 8, 9 are
// supported via explicit polynomial arithmetic.
type ffield struct {
	q   int
	add [][]int
	mul [][]int
	neg []int
	inv []int // inv[0] unused
}

// newPrimeField builds F_p for prime p.
func newPrimeField(p int) *ffield {
	f := &ffield{q: p}
	f.add = make([][]int, p)
	f.mul = make([][]int, p)
	f.neg = make([]int, p)
	f.inv = make([]int, p)
	for a := 0; a < p; a++ {
		f.add[a] = make([]int, p)
		f.mul[a] = make([]int, p)
		for b := 0; b < p; b++ {
			f.add[a][b] = (a + b) % p
			f.mul[a][b] = (a * b) % p
		}
		f.neg[a] = (p - a) % p
	}
	for a := 1; a < p; a++ {
		for b := 1; b < p; b++ {
			if a*b%p == 1 {
				f.inv[a] = b
			}
		}
	}
	return f
}

// newExtField builds F_{p^e} as polynomials modulo an irreducible
// polynomial given by its non-leading coefficients (lowest degree
// first). Elements are encoded in base p.
func newExtField(p, e int, modulus []int) *ffield {
	q := 1
	for i := 0; i < e; i++ {
		q *= p
	}
	decode := func(x int) []int {
		c := make([]int, e)
		for i := 0; i < e; i++ {
			c[i] = x % p
			x /= p
		}
		return c
	}
	encode := func(c []int) int {
		x := 0
		for i := e - 1; i >= 0; i-- {
			x = x*p + c[i]
		}
		return x
	}
	mulPoly := func(a, b []int) []int {
		prod := make([]int, 2*e-1)
		for i, ai := range a {
			if ai == 0 {
				continue
			}
			for j, bj := range b {
				prod[i+j] = (prod[i+j] + ai*bj) % p
			}
		}
		// Reduce using x^e = modulus(x).
		for d := 2*e - 2; d >= e; d-- {
			c := prod[d]
			if c == 0 {
				continue
			}
			prod[d] = 0
			for i := 0; i < e; i++ {
				prod[d-e+i] = (prod[d-e+i] + c*modulus[i]) % p
			}
		}
		return prod[:e]
	}
	f := &ffield{q: q}
	f.add = make([][]int, q)
	f.mul = make([][]int, q)
	f.neg = make([]int, q)
	f.inv = make([]int, q)
	for a := 0; a < q; a++ {
		f.add[a] = make([]int, q)
		f.mul[a] = make([]int, q)
		ca := decode(a)
		nc := make([]int, e)
		for i := range ca {
			nc[i] = (p - ca[i]) % p
		}
		f.neg[a] = encode(nc)
		for b := 0; b < q; b++ {
			cb := decode(b)
			sc := make([]int, e)
			for i := range ca {
				sc[i] = (ca[i] + cb[i]) % p
			}
			f.add[a][b] = encode(sc)
			f.mul[a][b] = encode(mulPoly(ca, cb))
		}
	}
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.mul[a][b] == 1 {
				f.inv[a] = b
			}
		}
	}
	return f
}

// fieldFor returns F_q for the supported q values.
func fieldFor(q int) (*ffield, error) {
	switch q {
	case 2, 3, 5, 7, 11, 13, 17, 19, 23:
		return newPrimeField(q), nil
	case 4:
		return newExtField(2, 2, []int{1, 1}), nil // x^2 = x + 1
	case 8:
		return newExtField(2, 3, []int{1, 1, 0}), nil // x^3 = x + 1
	case 9:
		return newExtField(3, 2, []int{2, 0}), nil // x^2 = -1 (x^2+1 irreducible over F_3)
	default:
		return nil, fmt.Errorf("group: unsupported field size %d", q)
	}
}

// PSL2 constructs PSL(2,q) as a permutation group on the q+1 points of
// the projective line P^1(F_q).
func PSL2(q int) (*Group, error) {
	f, err := fieldFor(q)
	if err != nil {
		return nil, err
	}
	// Points: 0..q-1 are finite points, q is infinity.
	// Generators of SL(2,q): translations T_1 and T_g (g primitive, needed
	// for extension fields where T_1 only reaches the prime subfield) and
	// the inversion S = [[0,-1],[1,0]].
	t1 := mobiusPerm(f, 1, 1, 0, 1)
	tg := mobiusPerm(f, 1, primitiveElement(f), 0, 1)
	s := mobiusPerm(f, 0, f.neg[1], 1, 0)
	order := pslOrder(q)
	g, err := Generate(fmt.Sprintf("PSL(2,%d)", q), []Perm{t1, tg, s}, order+1)
	if err != nil {
		return nil, err
	}
	if g.Order() != order {
		return nil, fmt.Errorf("group: PSL(2,%d) enumeration gave %d elements, want %d", q, g.Order(), order)
	}
	return g, nil
}

// PGL2 constructs PGL(2,q) on the projective line (only differs from
// PSL(2,q) for odd q).
func PGL2(q int) (*Group, error) {
	f, err := fieldFor(q)
	if err != nil {
		return nil, err
	}
	t := mobiusPerm(f, 1, 1, 0, 1)
	s := mobiusPerm(f, 0, f.neg[1], 1, 0)
	// A scaling map x → gx where g is a primitive element.
	prim := primitiveElement(f)
	d := mobiusPerm(f, prim, 0, 0, 1)
	order := q * (q + 1) * (q - 1)
	g, err := Generate(fmt.Sprintf("PGL(2,%d)", q), []Perm{t, s, d}, order+1)
	if err != nil {
		return nil, err
	}
	if g.Order() != order {
		return nil, fmt.Errorf("group: PGL(2,%d) enumeration gave %d elements, want %d", q, g.Order(), order)
	}
	return g, nil
}

func pslOrder(q int) int {
	n := q * (q + 1) * (q - 1)
	if q%2 == 1 {
		n /= 2
	}
	return n
}

func primitiveElement(f *ffield) int {
	for g := 2; g < f.q; g++ {
		seen := map[int]bool{}
		x := 1
		for i := 0; i < f.q-1; i++ {
			x = f.mul[x][g]
			seen[x] = true
		}
		if len(seen) == f.q-1 {
			return g
		}
	}
	return 1
}

// mobiusPerm returns the action of the Möbius transform
// x → (a x + b) / (c x + d) on P^1(F_q), with point q = infinity.
func mobiusPerm(f *ffield, a, b, c, d int) Perm {
	q := f.q
	p := make(Perm, q+1)
	for x := 0; x <= q; x++ {
		var num, den int
		if x == q { // infinity maps to a/c
			num, den = a, c
		} else {
			num = f.add[f.mul[a][x]][b]
			den = f.add[f.mul[c][x]][d]
		}
		if den == 0 {
			p[x] = q
		} else {
			p[x] = f.mul[num][f.inv[den]]
		}
	}
	return p
}

// GL2 constructs GL(2,q) as a permutation group on the q²−1 nonzero
// vectors of F_q². GL(2,3) (order 48) is the rotation group of the Bolza
// surface's {3,8} tiling, the smallest {4,6} hyperbolic color substrate.
func GL2(q int) (*Group, error) {
	f, err := fieldFor(q)
	if err != nil {
		return nil, err
	}
	type vec struct{ x, y int }
	var pts []vec
	index := map[vec]int{}
	for x := 0; x < q; x++ {
		for y := 0; y < q; y++ {
			if x == 0 && y == 0 {
				continue
			}
			index[vec{x, y}] = len(pts)
			pts = append(pts, vec{x, y})
		}
	}
	matPerm := func(a, b, c, d int) Perm {
		p := make(Perm, len(pts))
		for i, v := range pts {
			nx := f.add[f.mul[a][v.x]][f.mul[b][v.y]]
			ny := f.add[f.mul[c][v.x]][f.mul[d][v.y]]
			p[i] = index[vec{nx, ny}]
		}
		return p
	}
	prim := primitiveElement(f)
	// GL(2,q) is generated by a transvection and a diagonal with a
	// primitive entry together with the Weyl element.
	t := matPerm(1, 1, 0, 1)
	s := matPerm(0, f.neg[1], 1, 0)
	d := matPerm(prim, 0, 0, 1)
	order := (q*q - 1) * (q*q - q)
	g, err := Generate(fmt.Sprintf("GL(2,%d)", q), []Perm{t, s, d}, order+1)
	if err != nil {
		return nil, err
	}
	if g.Order() != order {
		return nil, fmt.Errorf("group: GL(2,%d) enumeration gave %d elements, want %d", q, g.Order(), order)
	}
	return g, nil
}

// Affine constructs the affine group AGL(1, Z_m) = {x → ux+v : gcd(u,m)=1}
// acting on Z_m; a cheap source of small groups with high-order elements.
func Affine(m int) (*Group, error) {
	if m < 3 {
		return nil, fmt.Errorf("group: Affine(%d) unsupported", m)
	}
	var gens []Perm
	// Translation.
	tr := make(Perm, m)
	for i := range tr {
		tr[i] = (i + 1) % m
	}
	gens = append(gens, tr)
	// All multiplications by units (generators suffice, but including all
	// units keeps this simple and m is tiny).
	for u := 2; u < m; u++ {
		if gcd(u, m) != 1 {
			continue
		}
		p := make(Perm, m)
		for i := range p {
			p[i] = (u * i) % m
		}
		gens = append(gens, p)
	}
	phi := 0
	for u := 1; u < m; u++ {
		if gcd(u, m) == 1 {
			phi++
		}
	}
	return Generate(fmt.Sprintf("Aff(%d)", m), gens, m*phi+1)
}

// Sym constructs the symmetric group S_n (n ≤ 8 to keep sizes sane).
func Sym(n int) (*Group, error) {
	if n < 2 || n > 8 {
		return nil, fmt.Errorf("group: Sym(%d) unsupported", n)
	}
	cyc := FromCycles(n, [][]int{rangeInts(n)})
	swap := FromCycles(n, [][]int{{0, 1}})
	return Generate(fmt.Sprintf("S%d", n), []Perm{cyc, swap}, factorial(n)+1)
}

// Alt constructs the alternating group A_n (n ≤ 8).
func Alt(n int) (*Group, error) {
	if n < 3 || n > 8 {
		return nil, fmt.Errorf("group: Alt(%d) unsupported", n)
	}
	var gens []Perm
	// 3-cycles (0,1,2), (0,1,3), ..., (0,1,n-1) generate A_n.
	for k := 2; k < n; k++ {
		gens = append(gens, FromCycles(n, [][]int{{0, 1, k}}))
	}
	return Generate(fmt.Sprintf("A%d", n), gens, factorial(n)/2+1)
}

// DirectProduct returns G × H acting on the disjoint union of points.
func DirectProduct(g, h *Group, limit int) (*Group, error) {
	dg := len(g.Elements[0])
	dh := len(h.Elements[0])
	var gens []Perm
	for _, x := range g.gens {
		p := Identity(dg + dh)
		copy(p[:dg], x)
		gens = append(gens, p)
	}
	for _, y := range h.gens {
		p := Identity(dg + dh)
		for i, v := range y {
			p[dg+i] = dg + v
		}
		gens = append(gens, p)
	}
	return Generate(g.Name+"x"+h.Name, gens, limit)
}

// Cyclic returns the cyclic group C_n.
func Cyclic(n int) (*Group, error) {
	return Generate(fmt.Sprintf("C%d", n), []Perm{FromCycles(n, [][]int{rangeInts(n)})}, n+1)
}

func rangeInts(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}
