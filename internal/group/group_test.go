package group

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermMulInverse(t *testing.T) {
	p := FromCycles(5, [][]int{{0, 1, 2}})
	q := FromCycles(5, [][]int{{2, 3}})
	pq := p.Mul(q)
	// (p∘q)(2) = p(3) = 3; (p∘q)(3) = p(2) = 0.
	if pq[2] != 3 || pq[3] != 0 {
		t.Fatalf("Mul wrong: %v", pq)
	}
	if !p.Mul(p.Inverse()).IsIdentity() {
		t.Fatal("p * p^-1 != id")
	}
}

func TestPermOrderAndCycles(t *testing.T) {
	p := FromCycles(7, [][]int{{0, 1, 2}, {3, 4}})
	if p.Order() != 6 {
		t.Fatalf("Order = %d, want 6", p.Order())
	}
	ct := p.CycleType()
	if ct[3] != 1 || ct[2] != 1 || ct[1] != 2 {
		t.Fatalf("CycleType = %v", ct)
	}
	if !FromCycles(6, [][]int{{0, 1}, {2, 3}, {4, 5}}).AllCyclesLen(2) {
		t.Fatal("AllCyclesLen(2) false for product of transpositions")
	}
	if FromCycles(6, [][]int{{0, 1}, {2, 3}}).AllCyclesLen(2) {
		t.Fatal("fixed points should fail AllCyclesLen(2)")
	}
}

func TestPermPow(t *testing.T) {
	p := FromCycles(5, [][]int{{0, 1, 2, 3, 4}})
	if !p.Pow(5).IsIdentity() {
		t.Fatal("5-cycle^5 != id")
	}
	if !p.Pow(-1).Equal(p.Inverse()) {
		t.Fatal("Pow(-1) != Inverse")
	}
	if !p.Pow(7).Equal(p.Mul(p)) {
		t.Fatal("Pow(7) != p^2 for 5-cycle")
	}
}

func TestGenerateSymmetric(t *testing.T) {
	for n, want := range map[int]int{3: 6, 4: 24, 5: 120} {
		g, err := Sym(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.Order() != want {
			t.Fatalf("|S%d| = %d, want %d", n, g.Order(), want)
		}
	}
}

func TestGenerateAlternating(t *testing.T) {
	for n, want := range map[int]int{4: 12, 5: 60, 6: 360} {
		g, err := Alt(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.Order() != want {
			t.Fatalf("|A%d| = %d, want %d", n, g.Order(), want)
		}
	}
}

func TestPSL2Orders(t *testing.T) {
	for q, want := range map[int]int{5: 60, 7: 168, 8: 504, 9: 360, 11: 660, 13: 1092} {
		g, err := PSL2(q)
		if err != nil {
			t.Fatalf("PSL(2,%d): %v", q, err)
		}
		if g.Order() != want {
			t.Fatalf("|PSL(2,%d)| = %d, want %d", q, g.Order(), want)
		}
	}
}

func TestPGL2Orders(t *testing.T) {
	for q, want := range map[int]int{5: 120, 7: 336, 9: 720} {
		g, err := PGL2(q)
		if err != nil {
			t.Fatalf("PGL(2,%d): %v", q, err)
		}
		if g.Order() != want {
			t.Fatalf("|PGL(2,%d)| = %d, want %d", q, g.Order(), want)
		}
	}
}

func TestDirectProduct(t *testing.T) {
	a, _ := Alt(4)
	c, _ := Cyclic(2)
	g, err := DirectProduct(a, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 24 {
		t.Fatalf("|A4 x C2| = %d, want 24", g.Order())
	}
}

func TestElementsOfOrder(t *testing.T) {
	g, _ := Alt(5)
	// A5 has 24 elements of order 5, 20 of order 3, 15 of order 2.
	if n := len(g.ElementsOfOrder(5)); n != 24 {
		t.Fatalf("order-5 elements: %d, want 24", n)
	}
	if n := len(g.ElementsOfOrder(3)); n != 20 {
		t.Fatalf("order-3 elements: %d, want 20", n)
	}
	if n := len(g.ElementsOfOrder(2)); n != 15 {
		t.Fatalf("order-2 elements: %d, want 15", n)
	}
}

func TestFindRSPairsA5(t *testing.T) {
	// A5 is a (2,5,5) group: x order 5, y order 2, xy order 5.
	g, _ := Alt(5)
	rng := rand.New(rand.NewSource(1))
	pairs := FindRSPairs(g, 5, 5, rng, 2000, 3, 60)
	if len(pairs) == 0 {
		t.Fatal("no (2,5,5) pair found in A5")
	}
	found60 := false
	for _, p := range pairs {
		if p.X.Order() != 5 || p.Y.Order() != 2 || p.X.Mul(p.Y).Order() != 5 {
			t.Fatal("pair order constraints violated")
		}
		if p.Sub.Order() == 60 {
			found60 = true
		}
	}
	if !found60 {
		t.Fatal("expected a generating pair with <x,y> = A5")
	}
}

func TestFindRSPairsS5(t *testing.T) {
	// S5 is a (2,4,5) group (x order 5, y order 2, xy order 4).
	g, _ := Sym(5)
	rng := rand.New(rand.NewSource(2))
	pairs := FindRSPairs(g, 5, 4, rng, 4000, 5, 120)
	var full bool
	for _, p := range pairs {
		if p.Sub.Order() == 120 {
			full = true
		}
	}
	if !full {
		t.Fatal("expected S5 to be (2,4,5)-generated")
	}
}

// Property: group elements are closed under multiplication (spot check).
func TestPropertyClosure(t *testing.T) {
	g, _ := Sym(4)
	f := func(i, j uint8) bool {
		a := g.Elements[int(i)%g.Order()]
		b := g.Elements[int(j)%g.Order()]
		return g.Contains(a.Mul(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: order of an element divides the group order (Lagrange).
func TestPropertyLagrange(t *testing.T) {
	g, _ := PSL2(7)
	for _, e := range g.Elements {
		if g.Order()%e.Order() != 0 {
			t.Fatalf("element order %d does not divide %d", e.Order(), g.Order())
		}
	}
}

func TestMenuAllBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("menu build is slow")
	}
	for _, m := range Menu() {
		if m.Name == "PSL(2,17)" || m.Name == "PSL(2,19)" || m.Name == "PSL(2,13)" {
			continue // large; covered indirectly by catalogue generation
		}
		g, err := m.Build()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if g.Order() < 2 {
			t.Fatalf("%s: trivial group", m.Name)
		}
	}
}

func TestGL2Order(t *testing.T) {
	g, err := GL2(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 48 {
		t.Fatalf("|GL(2,3)| = %d, want 48", g.Order())
	}
	// GL(2,3) is the (2,3,8) rotation group of the Bolza surface: it has
	// elements of order 8.
	if len(g.ElementsOfOrder(8)) == 0 {
		t.Fatal("GL(2,3) should contain order-8 elements")
	}
}

func TestGL2q4(t *testing.T) {
	g, err := GL2(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 15*12 {
		t.Fatalf("|GL(2,4)| = %d, want 180", g.Order())
	}
}

func TestAffineGroups(t *testing.T) {
	for _, m := range []int{8, 12, 16} {
		g, err := Affine(m)
		if err != nil {
			t.Fatal(err)
		}
		phi := 0
		for u := 1; u < m; u++ {
			if gcd(u, m) == 1 {
				phi++
			}
		}
		if g.Order() != m*phi {
			t.Fatalf("|Aff(%d)| = %d, want %d", m, g.Order(), m*phi)
		}
	}
}

func TestAffineRejectsTiny(t *testing.T) {
	if _, err := Affine(2); err == nil {
		t.Fatal("Affine(2) should be rejected")
	}
}
