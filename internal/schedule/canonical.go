package schedule

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
)

// CanonicalRotated builds the hand-crafted fault-tolerant schedule of
// the rotated planar surface code (Tomita & Svore): every check
// interacts with its data qubits in four timesteps using the "Z"/"S"
// corner patterns, which keeps hook errors off the logical operators.
// It is the reference point the greedy algorithm is compared against on
// planar codes.
func CanonicalRotated(l *surface.RotatedLayout) (*Schedule, *fpn.Network, error) {
	net, err := fpn.Build(l.Code, fpn.Options{})
	if err != nil {
		return nil, nil, err
	}
	windows := buildWindows(net)
	s := &Schedule{Net: net, Windows: windows}
	phase := Phase{Times: map[WD]int{}}
	// windows are direct, one per check, in check order.
	if len(windows) != len(l.Code.Checks) {
		return nil, nil, fmt.Errorf("schedule: unexpected window structure for rotated code")
	}
	for wi, w := range windows {
		if len(w.Checks) != 1 || w.Flag != -1 {
			return nil, nil, fmt.Errorf("schedule: window %d is not a direct check window", wi)
		}
		ci := w.Checks[0]
		order := l.CanonicalCNOTOrder(ci)
		// Boundary checks skip missing corners but keep the slot of the
		// surviving corners so that commutation with bulk checks holds:
		// recompute the absolute corner slots.
		slots := canonicalSlots(l, ci)
		if len(order) != len(slots) {
			return nil, nil, fmt.Errorf("schedule: slot/order mismatch for check %d", ci)
		}
		for k, q := range order {
			phase.Times[WD{wi, q}] = slots[k]
		}
		phase.Windows = append(phase.Windows, wi)
	}
	for _, t := range phase.Times {
		if t > phase.Steps {
			phase.Steps = t
		}
	}
	s.Phases = []Phase{phase}
	if err := s.Validate(); err != nil {
		return nil, nil, fmt.Errorf("schedule: canonical rotated schedule invalid: %w", err)
	}
	return s, net, nil
}

// canonicalSlots returns the absolute timestep (1..4) of each present
// corner in the canonical order: X checks sweep NW,NE,SW,SE over slots
// 1..4 and Z checks NW,SW,NE,SE; a missing boundary corner frees its
// slot but does not shift the others.
func canonicalSlots(l *surface.RotatedLayout, check int) []int {
	i, j := l.CheckPos[check][0], l.CheckPos[check][1]
	d := l.D
	present := func(r, c int) bool { return r >= 0 && r < d && c >= 0 && c < d }
	type corner struct{ r, c int }
	nw := corner{i - 1, j - 1}
	ne := corner{i - 1, j}
	sw := corner{i, j - 1}
	se := corner{i, j}
	var seq []corner
	if l.Code.Checks[check].Basis == 'X' {
		seq = []corner{nw, ne, sw, se}
	} else {
		seq = []corner{nw, sw, ne, se}
	}
	var out []int
	for slot, cr := range seq {
		if present(cr.r, cr.c) {
			out = append(out, slot+1)
		}
	}
	return out
}
