package schedule

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// LayerKind enumerates physical layer types in a round plan.
type LayerKind int

// Layer kinds.
const (
	LayerReset LayerKind = iota
	LayerH
	LayerCX
	LayerMR
	// LayerProxyReset re-initializes proxy qubits at the end of every
	// phase. Proxies are never measured (§IV-B), so without a periodic
	// reset a residual proxy error would silently corrupt every later
	// relay through it, persisting across rounds.
	LayerProxyReset
)

// Layer is one parallel timestep of physical operations.
type Layer struct {
	Kind   LayerKind
	Qubits []int    // Reset/H/MR targets
	Pairs  [][2]int // CX (control, target) pairs
	// Resets lists proxy qubits re-initialized during a CX layer (a relay
	// job resets its interior proxies right after its last CNOT, so a
	// residual proxy error can never leak into the next relay).
	Resets []int
}

// MeasKind distinguishes parity from flag measurements.
type MeasKind int

// Measurement kinds.
const (
	MeasParity MeasKind = iota
	MeasFlag
)

// MeasTarget records the semantics of one measurement within a round, in
// the order measurements appear in the plan's MR layers.
type MeasTarget struct {
	Kind  MeasKind
	Qubit int
	Check int       // check index for parity measurements; -1 for flags
	Flag  int       // physical flag qubit for flag measurements; -1 otherwise
	Basis css.Basis // extraction basis of the window/check
}

// RoundPlan is the fully lowered physical sequence of one
// syndrome-extraction round.
type RoundPlan struct {
	Net       *fpn.Network
	Layers    []Layer
	Meas      []MeasTarget
	CXLayers  int
	LatencyNs float64
	Phases    int
}

// LatencyModel constants from §III-A / §V-F: a phase costs 890 ns
// (2 H + measure + reset) plus 40 ns per CNOT timestep.
const (
	PhaseBaseNs = 890.0
	CXStepNs    = 40.0
)

// TheoreticalShortestNs returns the paper's shortest-circuit latency for
// maximum check weight delta.
func TheoreticalShortestNs(delta int) float64 { return PhaseBaseNs + CXStepNs*float64(delta) }

// TheoreticalLongestNs returns the worst-case disjoint-schedule latency.
func TheoreticalLongestNs(deltaX, deltaZ int) float64 {
	return PhaseBaseNs + CXStepNs*float64(deltaX+deltaZ)
}

// BuildRoundPlan lowers a schedule into physical layers. Every logical
// data timestep becomes one or more CX layers (proxy ladders expand to
// 2k-1 CNOTs along a k-edge path); opening/closing flag-parity CNOTs and
// measurements are packed greedily.
func BuildRoundPlan(s *Schedule) (*RoundPlan, error) {
	plan := &RoundPlan{Net: s.Net, Phases: len(s.Phases)}
	for pi := range s.Phases {
		if err := plan.lowerPhase(s, &s.Phases[pi]); err != nil {
			return nil, err
		}
	}
	for _, l := range plan.Layers {
		if l.Kind == LayerCX {
			plan.CXLayers++
		}
	}
	plan.LatencyNs = PhaseBaseNs*float64(plan.Phases) + CXStepNs*float64(plan.CXLayers)
	return plan, nil
}

// cxJob is one logical CNOT to be expanded along a proxy path.
type cxJob struct {
	path    []int // control-side first; logical control = path[0], target = path[len-1]
	reverse bool  // when true the logical control is the far end (path given target-side first)
}

// jobOp is one physical step of an expanded relay job: a CNOT or a
// trailing reset of the interior proxies.
type jobOp struct {
	isReset bool
	a, b    int   // CNOT pair when !isReset
	resets  []int // proxies reset when isReset
}

// ops expands the job into its physical sequence (forward copy ladder,
// relay, uncompute, then a reset of the interior proxies).
func (j cxJob) ops() []jobOp {
	p := j.path
	if j.reverse {
		p = make([]int, len(j.path))
		for i := range j.path {
			p[i] = j.path[len(j.path)-1-i]
		}
	}
	k := len(p) - 1 // edges
	var out []jobOp
	for i := 0; i < k-1; i++ {
		out = append(out, jobOp{a: p[i], b: p[i+1]})
	}
	out = append(out, jobOp{a: p[k-1], b: p[k]})
	for i := k - 2; i >= 0; i-- {
		out = append(out, jobOp{a: p[i], b: p[i+1]})
	}
	if k > 1 {
		out = append(out, jobOp{isReset: true, resets: append([]int(nil), p[1:k]...)})
	}
	return out
}

// packJobs appends the jobs as CX layers with greedy packing: each job's
// ops run in consecutive layers relative to its own start, with qubit
// busy-sets respected. A barrier is implied: packing begins after the
// current last layer.
func (plan *RoundPlan) packJobs(jobs []cxJob) {
	var layers []map[int]bool // busy sets
	var pairs [][][2]int
	var resets [][]int
	busyIn := func(li int, op jobOp) bool {
		if op.isReset {
			for _, q := range op.resets {
				if layers[li][q] {
					return true
				}
			}
			return false
		}
		return layers[li][op.a] || layers[li][op.b]
	}
	place := func(opList []jobOp) {
		// Find the earliest offset where the whole sequence fits in
		// consecutive layers.
		offset := 0
		for {
			ok := true
			for i, op := range opList {
				li := offset + i
				for li >= len(layers) {
					layers = append(layers, map[int]bool{})
					pairs = append(pairs, nil)
					resets = append(resets, nil)
				}
				if busyIn(li, op) {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			offset++
		}
		for i, op := range opList {
			li := offset + i
			if op.isReset {
				for _, q := range op.resets {
					layers[li][q] = true
					resets[li] = append(resets[li], q)
				}
			} else {
				layers[li][op.a] = true
				layers[li][op.b] = true
				pairs[li] = append(pairs[li], [2]int{op.a, op.b})
			}
		}
	}
	for _, j := range jobs {
		place(j.ops())
	}
	for li := range pairs {
		if len(pairs[li]) == 0 && len(resets[li]) == 0 {
			continue
		}
		if len(pairs[li]) == 0 {
			plan.Layers = append(plan.Layers, Layer{Kind: LayerProxyReset, Qubits: resets[li]})
			continue
		}
		plan.Layers = append(plan.Layers, Layer{Kind: LayerCX, Pairs: pairs[li], Resets: resets[li]})
	}
}

// lowerPhase emits reset/prep, opening, data steps, closing, un-prep and
// measurement layers for one phase.
func (plan *RoundPlan) lowerPhase(s *Schedule, phase *Phase) error {
	net := s.Net
	code := net.Code
	// Participants.
	var parities, flags, hTargets []int
	parSeen := map[int]bool{}
	flagSeen := map[int]bool{}
	checkSeen := map[int]bool{}
	var checks []int
	for _, wi := range phase.Windows {
		w := s.Windows[wi]
		for i, p := range w.Parities {
			if !parSeen[p] {
				parSeen[p] = true
				parities = append(parities, p)
			}
			if !checkSeen[w.Checks[i]] {
				checkSeen[w.Checks[i]] = true
				checks = append(checks, w.Checks[i])
			}
		}
		if w.Flag >= 0 && !flagSeen[w.Flag] {
			flagSeen[w.Flag] = true
			flags = append(flags, w.Flag)
		}
	}
	// H targets: X-check parities (|+> prep) and Z-window flags (|+>).
	for _, ci := range checks {
		if code.Checks[ci].Basis == css.X {
			hTargets = append(hTargets, net.ParityQubit[ci])
		}
	}
	for _, wi := range phase.Windows {
		w := s.Windows[wi]
		if w.Flag >= 0 && w.Basis == css.Z {
			hTargets = append(hTargets, w.Flag)
		}
	}
	resetTargets := append(append([]int(nil), parities...), flags...)
	plan.Layers = append(plan.Layers, Layer{Kind: LayerReset, Qubits: resetTargets})
	if len(hTargets) > 0 {
		plan.Layers = append(plan.Layers, Layer{Kind: LayerH, Qubits: append([]int(nil), hTargets...)})
	}
	// Opening CNOTs: flag ↔ parity per served check. Z windows: flag is
	// control (CNOT flag→parity); X windows: parity is control.
	var opening []cxJob
	for _, wi := range phase.Windows {
		w := s.Windows[wi]
		if w.Flag < 0 {
			continue
		}
		for _, p := range w.Parities {
			path := net.ProxyPath(w.Flag, p)
			if path == nil {
				return fmt.Errorf("schedule: no proxy path flag %d to parity %d", w.Flag, p)
			}
			opening = append(opening, cxJob{path: path, reverse: w.Basis == css.X})
		}
	}
	plan.packJobs(opening)
	// Data timesteps.
	for t := 1; t <= phase.Steps; t++ {
		var jobs []cxJob
		for _, wi := range phase.Windows {
			w := s.Windows[wi]
			for _, q := range w.Data {
				if phase.Times[WD{wi, q}] != t {
					continue
				}
				endpoint := w.Flag
				if endpoint < 0 {
					endpoint = w.Parities[0]
				}
				path := net.ProxyPath(q, endpoint)
				if path == nil {
					return fmt.Errorf("schedule: no proxy path data %d to %d", q, endpoint)
				}
				// Z basis: data is control (data→flag/parity); X basis:
				// flag/parity is control.
				jobs = append(jobs, cxJob{path: path, reverse: w.Basis == css.X})
			}
		}
		plan.packJobs(jobs)
	}
	// Closing CNOTs mirror the opening.
	plan.packJobs(opening)
	// Un-prep H and measure.
	if len(hTargets) > 0 {
		plan.Layers = append(plan.Layers, Layer{Kind: LayerH, Qubits: append([]int(nil), hTargets...)})
	}
	var mrQubits []int
	for _, ci := range checks {
		mrQubits = append(mrQubits, net.ParityQubit[ci])
		plan.Meas = append(plan.Meas, MeasTarget{Kind: MeasParity, Qubit: net.ParityQubit[ci], Check: ci, Flag: -1, Basis: code.Checks[ci].Basis})
	}
	for _, wi := range phase.Windows {
		w := s.Windows[wi]
		if w.Flag < 0 || !flagSeen[w.Flag] {
			continue
		}
		flagSeen[w.Flag] = false // measure once per phase
		mrQubits = append(mrQubits, w.Flag)
		plan.Meas = append(plan.Meas, MeasTarget{Kind: MeasFlag, Qubit: w.Flag, Check: -1, Flag: w.Flag, Basis: w.Basis})
	}
	plan.Layers = append(plan.Layers, Layer{Kind: LayerMR, Qubits: mrQubits})
	// Reset every proxy used by this phase so relay errors cannot persist
	// into later phases or rounds.
	var proxies []int
	for q, ty := range net.Types {
		if ty == fpn.Proxy {
			proxies = append(proxies, q)
		}
	}
	if len(proxies) > 0 {
		plan.Layers = append(plan.Layers, Layer{Kind: LayerProxyReset, Qubits: proxies})
	}
	return nil
}
