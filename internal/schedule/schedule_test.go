package schedule

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func steane(t *testing.T) *css.Code {
	t.Helper()
	sups := [][]int{{0, 1, 2, 3}, {1, 2, 4, 5}, {2, 3, 5, 6}}
	var checks []css.Check
	for _, b := range []css.Basis{css.X, css.Z} {
		for _, s := range sups {
			checks = append(checks, css.Check{Basis: b, Support: s, Color: -1})
		}
	}
	c, err := css.New("steane", "test", 7, checks)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func hyper55(t *testing.T) *css.Code {
	t.Helper()
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err := surface.FromMap(m, "hysc-30", "hyperbolic-surface {5,5}")
		if err == nil {
			return code
		}
	}
	t.Fatal("no [[30,8,3,3]] code")
	return nil
}

func buildNet(t *testing.T, code *css.Code, opt fpn.Options) *fpn.Network {
	t.Helper()
	n, err := fpn.Build(code, opt)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGreedyDirectSteane(t *testing.T) {
	net := buildNet(t, steane(t), fpn.Options{})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	if s.Split {
		t.Fatal("direct network should not split")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Better than worst case (4+4=8 steps) is expected for the Steane code.
	if s.Steps() > 8 {
		t.Fatalf("steps = %d, worse than disjoint baseline", s.Steps())
	}
	t.Logf("steane greedy steps: %d", s.Steps())
}

func TestGreedyDirectHyperbolic(t *testing.T) {
	code := hyper55(t)
	net := buildNet(t, code, fpn.Options{})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	worst := code.MaxWeight(css.X) + code.MaxWeight(css.Z)
	t.Logf("{5,5} direct greedy steps: %d (worst case %d)", s.Steps(), worst)
	if s.Steps() > worst {
		t.Fatalf("greedy (%d) exceeded worst case (%d)", s.Steps(), worst)
	}
}

func TestGreedyFPNSplitsOnSharedFlags(t *testing.T) {
	code := hyper55(t)
	net := buildNet(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Split {
		t.Fatal("shared-flag FPN should split X/Z phases")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyFPNNoSharingInterleaves(t *testing.T) {
	code := steane(t)
	net := buildNet(t, code, fpn.Options{UseFlags: true})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	if s.Split {
		t.Fatal("per-check flags should not force a split")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCommutationViolation(t *testing.T) {
	code := steane(t)
	net := buildNet(t, code, fpn.Options{})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: swap two times of one check sharing qubits with an
	// opposite-basis check to force an odd crossing.
	phase := &s.Phases[0]
	// Find an X/Z check pair sharing exactly two qubits.
	for wi, w := range s.Windows {
		if w.Basis != css.X {
			continue
		}
		for wj, w2 := range s.Windows {
			if w2.Basis != css.Z {
				continue
			}
			shared := []int{}
			in := map[int]bool{}
			for _, q := range w.Data {
				in[q] = true
			}
			for _, q := range w2.Data {
				if in[q] {
					shared = append(shared, q)
				}
			}
			if len(shared) != 2 {
				continue
			}
			a, b := shared[0], shared[1]
			ta, tb := phase.Times[WD{wi, a}], phase.Times[WD{wi, b}]
			ua, ub := phase.Times[WD{wj, a}], phase.Times[WD{wj, b}]
			// Force exactly one crossing: set times so a crosses, b does not.
			phase.Times[WD{wi, a}] = ua + 100
			phase.Times[WD{wi, b}] = ub - 100
			if err := s.Validate(); err == nil {
				t.Fatal("expected commutation violation")
			}
			phase.Times[WD{wi, a}], phase.Times[WD{wi, b}] = ta, tb
			return
		}
	}
	t.Skip("no overlapping pair found")
}

func TestBuildRoundPlanDirect(t *testing.T) {
	code := steane(t)
	net := buildNet(t, code, fpn.Options{})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	// 6 parity measurements, no flags.
	if len(plan.Meas) != 6 {
		t.Fatalf("measurements = %d, want 6", len(plan.Meas))
	}
	for _, m := range plan.Meas {
		if m.Kind != MeasParity {
			t.Fatal("direct plan should only measure parities")
		}
	}
	if plan.CXLayers != s.Steps() {
		t.Fatalf("CX layers %d != steps %d for direct plan", plan.CXLayers, s.Steps())
	}
	wantLatency := PhaseBaseNs + CXStepNs*float64(plan.CXLayers)
	if plan.LatencyNs != wantLatency {
		t.Fatalf("latency %.0f, want %.0f", plan.LatencyNs, wantLatency)
	}
}

func TestBuildRoundPlanFPN(t *testing.T) {
	code := hyper55(t)
	net := buildNet(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Phases != 2 {
		t.Fatalf("phases = %d, want 2", plan.Phases)
	}
	var parity, flag int
	for _, m := range plan.Meas {
		switch m.Kind {
		case MeasParity:
			parity++
		case MeasFlag:
			flag++
		}
	}
	if parity != len(code.Checks) {
		t.Fatalf("parity measurements %d, want %d", parity, len(code.Checks))
	}
	if flag == 0 {
		t.Fatal("expected flag measurements")
	}
	// Each CX layer's pairs must be disjoint.
	for _, l := range plan.Layers {
		if l.Kind != LayerCX {
			continue
		}
		busy := map[int]bool{}
		for _, p := range l.Pairs {
			if busy[p[0]] || busy[p[1]] || p[0] == p[1] {
				t.Fatal("overlapping pairs in a CX layer")
			}
			busy[p[0]], busy[p[1]] = true, true
		}
	}
	t.Logf("FPN plan: %d CX layers, latency %.0f ns, %d flag meas", plan.CXLayers, plan.LatencyNs, flag)
}

func TestPlanLatencyComparableToPaper(t *testing.T) {
	// Paper §V-G3: hyperbolic surface FPN worst-case ≈ 2.3 µs. Ours uses
	// the same latency model; assert we are in a sane band (1–5 µs).
	code := hyper55(t)
	net := buildNet(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.LatencyNs < 1000 || plan.LatencyNs > 6000 {
		t.Fatalf("latency %.0f ns outside sanity band", plan.LatencyNs)
	}
}

func TestCxJobLadder(t *testing.T) {
	checkCX := func(ops []jobOp, want [][2]int) {
		t.Helper()
		var got [][2]int
		for _, op := range ops {
			if !op.isReset {
				got = append(got, [2]int{op.a, op.b})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("ops = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ops = %v, want %v", got, want)
			}
		}
	}
	j := cxJob{path: []int{1, 2, 3}}
	ops := j.ops()
	checkCX(ops, [][2]int{{1, 2}, {2, 3}, {1, 2}})
	// Interior proxy 2 must be reset at the end of the job.
	last := ops[len(ops)-1]
	if !last.isReset || len(last.resets) != 1 || last.resets[0] != 2 {
		t.Fatalf("expected trailing proxy reset, got %+v", last)
	}
	jr := cxJob{path: []int{1, 2, 3}, reverse: true}
	checkCX(jr.ops(), [][2]int{{3, 2}, {2, 1}, {3, 2}})
	// Adjacent pair: single CNOT, no reset.
	ops = (cxJob{path: []int{4, 5}}).ops()
	if len(ops) != 1 || ops[0].isReset || ops[0].a != 4 || ops[0].b != 5 {
		t.Fatalf("adjacent ops = %v", ops)
	}
}

func TestTheoreticalLatencies(t *testing.T) {
	if TheoreticalShortestNs(5) != 890+200 {
		t.Fatal("shortest latency formula wrong")
	}
	if TheoreticalLongestNs(5, 4) != 890+360 {
		t.Fatal("longest latency formula wrong")
	}
}

func TestGreedyBeatsWorstCaseOnDenseCode(t *testing.T) {
	// Color-code-like dense checks: the greedy scheduler should do better
	// than the disjoint baseline on the Steane code (shared supports).
	code := steane(t)
	net := buildNet(t, code, fpn.Options{})
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps() >= 8 {
		t.Skipf("greedy found %d steps; no improvement on this instance", s.Steps())
	}
}
