package schedule

import (
	"testing"

	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
)

func BenchmarkGreedyRotatedD7(b *testing.B) {
	l, err := surface.Rotated(7)
	if err != nil {
		b.Fatal(err)
	}
	net, err := fpn.Build(l.Code, fpn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildRoundPlanRotatedD7(b *testing.B) {
	l, err := surface.Rotated(7)
	if err != nil {
		b.Fatal(err)
	}
	net, err := fpn.Build(l.Code, fpn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := Greedy(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRoundPlan(s); err != nil {
			b.Fatal(err)
		}
	}
}
