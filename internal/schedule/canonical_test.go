package schedule

import (
	"testing"

	"github.com/fpn/flagproxy/internal/surface"
)

func TestCanonicalRotatedValid(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l, err := surface.Rotated(d)
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := CanonicalRotated(l)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if s.Steps() != 4 {
			t.Fatalf("d=%d: canonical schedule has %d steps, want 4", d, s.Steps())
		}
	}
}

func TestCanonicalRotatedPlan(t *testing.T) {
	l, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := CanonicalRotated(l)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CXLayers != 4 {
		t.Fatalf("CX layers = %d, want 4", plan.CXLayers)
	}
	// 1050 ns: the theoretical shortest for δ=4.
	if plan.LatencyNs != TheoreticalShortestNs(4) {
		t.Fatalf("latency %.0f, want %.0f", plan.LatencyNs, TheoreticalShortestNs(4))
	}
}

func TestCanonicalBeatsGreedyOnPlanar(t *testing.T) {
	l, err := surface.Rotated(5)
	if err != nil {
		t.Fatal(err)
	}
	canon, net, err := CanonicalRotated(l)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	if canon.Steps() > greedy.Steps() {
		t.Fatalf("canonical (%d) worse than greedy (%d)", canon.Steps(), greedy.Steps())
	}
	t.Logf("canonical %d steps vs greedy %d", canon.Steps(), greedy.Steps())
}
