package schedule

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/hgp"
)

// Property: the greedy scheduler produces valid schedules (uniqueness +
// commutation) on random hypergraph-product codes, for direct and
// flagged architectures alike, and never exceeds the disjoint worst
// case.
func TestPropertyGreedyValidOnRandomHGP(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		c1, err := hgp.RandomLDPC(4, 2, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := hgp.RandomLDPC(4, 2, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		code, err := hgp.Product(c1, c2, "hgp-prop")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, opt := range []fpn.Options{
			{},
			{UseFlags: true},
			{UseFlags: true, FlagSharing: true, MaxDegree: 4},
		} {
			net, err := fpn.Build(code, opt)
			if err != nil {
				t.Fatalf("trial %d opt %+v: %v", trial, opt, err)
			}
			s, err := Greedy(net)
			if err != nil {
				t.Fatalf("trial %d opt %+v: %v", trial, opt, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d opt %+v: %v", trial, opt, err)
			}
			plan, err := BuildRoundPlan(s)
			if err != nil {
				t.Fatalf("trial %d opt %+v: %v", trial, opt, err)
			}
			if plan.CXLayers == 0 {
				t.Fatalf("trial %d: empty plan", trial)
			}
		}
	}
}

// Property: every measurement target in a lowered plan is unique per
// round and covers all checks exactly once.
func TestPropertyPlanMeasurementCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c1, err := hgp.RandomLDPC(4, 2, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	code, err := hgp.Product(c1, c1, "hgp-cov")
	if err != nil {
		t.Fatal(err)
	}
	net, err := fpn.Build(code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, mt := range plan.Meas {
		if mt.Kind == MeasParity {
			seen[mt.Check]++
		}
	}
	for ci := range code.Checks {
		if seen[ci] != 1 {
			t.Fatalf("check %d measured %d times per round", ci, seen[ci])
		}
	}
}
