package schedule

import (
	"fmt"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// solverBudget bounds the branch-and-bound node count per check. The
// first depth-first descent already produces a greedy-feasible
// assignment, so the budget mostly controls how hard the solver works at
// proving optimality; a modest cap keeps large codes fast at negligible
// quality cost. If no solution at all is found within the budget, the
// greedy algorithm falls back to appending at fresh timesteps (always
// feasible, worst-case depth).
const solverBudget = 60_000

// Greedy runs Algorithm 1 on a network: checks are scheduled one at a
// time, each by an exact branch-and-bound solve of its local CSP under
// the constraints imposed by already-scheduled checks. When any physical
// flag serves both bases, the round is split into a Z phase followed by
// an X phase (the flag cannot hold both bases at once), which also
// discharges the commutation constraints.
func Greedy(net *fpn.Network) (*Schedule, error) {
	windows := buildWindows(net)
	s := &Schedule{Net: net, Windows: windows, Split: needsSplit(windows)}
	if !s.Split {
		// Try a fully interleaved schedule first. Codes whose X and Z
		// checks share large supports (color codes) make the commutation
		// constraints so restrictive that interleaving degenerates past
		// the disjoint worst case; in that regime measure the bases
		// separately, as the paper does for the hyperbolic color codes.
		phase := Phase{Times: map[WD]int{}}
		for wi := range windows {
			phase.Windows = append(phase.Windows, wi)
		}
		if err := s.schedulePhase(&phase, true); err != nil {
			return nil, err
		}
		worst := s.Net.Code.MaxWeight(css.X) + s.Net.Code.MaxWeight(css.Z)
		if phase.Steps <= worst {
			s.Phases = []Phase{phase}
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("schedule: greedy produced invalid schedule: %w", err)
			}
			return s, nil
		}
		// Re-schedule the bases disjointly but keep a single measurement
		// phase: Z checks first, X checks shifted past them (every
		// commutation product is then positive).
		merged := Phase{Times: map[WD]int{}}
		for wi := range windows {
			merged.Windows = append(merged.Windows, wi)
		}
		shift := 0
		for _, b := range []css.Basis{css.Z, css.X} {
			sub := Phase{Basis: b, Times: map[WD]int{}}
			for wi, w := range windows {
				if w.Basis == b {
					sub.Windows = append(sub.Windows, wi)
				}
			}
			if err := s.schedulePhase(&sub, false); err != nil {
				return nil, err
			}
			for wd, t := range sub.Times {
				merged.Times[wd] = t + shift
			}
			shift += sub.Steps
		}
		merged.Steps = shift
		s.Phases = []Phase{merged}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("schedule: greedy produced invalid schedule: %w", err)
		}
		return s, nil
	}
	for _, b := range []css.Basis{css.Z, css.X} {
		phase := Phase{Basis: b, Times: map[WD]int{}}
		for wi, w := range windows {
			if w.Basis == b {
				phase.Windows = append(phase.Windows, wi)
			}
		}
		if err := s.schedulePhase(&phase, false); err != nil {
			return nil, err
		}
		s.Phases = append(s.Phases, phase)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: greedy produced invalid schedule: %w", err)
	}
	return s, nil
}

// schedulePhase schedules all checks whose windows lie in the phase.
func (s *Schedule) schedulePhase(phase *Phase, commute bool) error {
	code := s.Net.Code
	// Deterministic check order: alternate Z and X checks so the solver
	// can interleave the bases instead of stacking one after the other
	// (scheduling all Z checks first forces the X checks into late
	// timesteps and degenerates to the disjoint worst case).
	var checks []int
	seen := map[int]bool{}
	for _, wi := range phase.Windows {
		for _, c := range s.Windows[wi].Checks {
			if !seen[c] {
				seen[c] = true
				checks = append(checks, c)
			}
		}
	}
	sort.Ints(checks)
	var zs, xs []int
	for _, c := range checks {
		if code.Checks[c].Basis == css.Z {
			zs = append(zs, c)
		} else {
			xs = append(xs, c)
		}
	}
	checks = checks[:0]
	for i := 0; i < len(zs) || i < len(xs); i++ {
		if i < len(zs) {
			checks = append(checks, zs[i])
		}
		if i < len(xs) {
			checks = append(checks, xs[i])
		}
	}
	// windowOf[check] = windows serving it (within phase).
	windowOf := map[int][]int{}
	for _, wi := range phase.Windows {
		for _, c := range s.Windows[wi].Checks {
			windowOf[c] = append(windowOf[c], wi)
		}
	}
	deltaMax := 0
	for _, ci := range checks {
		if w := len(code.Checks[ci].Support); w > deltaMax {
			deltaMax = w
		}
	}
	qubitTimes := map[int]map[int]bool{} // data qubit -> occupied times
	scheduled := map[int]bool{}          // checks done
	for _, ci := range checks {
		if err := s.scheduleCheck(phase, ci, windowOf[ci], qubitTimes, scheduled, commute, deltaMax); err != nil {
			return err
		}
		scheduled[ci] = true
	}
	// Phase step count.
	for _, t := range phase.Times {
		if t > phase.Steps {
			phase.Steps = t
		}
	}
	return nil
}

// commConstraint is one commutation constraint against a scheduled
// opposite-basis check: the product over shared qubits of
// (t_this(q) − fixedOther(q)) must be positive.
type commConstraint struct {
	vars  []WD  // entries of this check's assignment involved (may be fixed)
	other []int // the already-scheduled partner's times, aligned with vars
}

func (s *Schedule) scheduleCheck(phase *Phase, ci int, wins []int, qubitTimes map[int]map[int]bool, scheduled map[int]bool, commute bool, deltaMax int) error {
	code := s.Net.Code
	// Collect this check's (window, qubit) slots; some may be fixed
	// already by shared windows scheduled through an earlier check.
	var vars []WD
	fixed := map[WD]int{}
	for _, wi := range wins {
		for _, q := range s.Windows[wi].Data {
			wd := WD{wi, q}
			if t, ok := phase.Times[wd]; ok {
				fixed[wd] = t
			} else {
				vars = append(vars, wd)
			}
		}
	}
	// Commutation constraints against scheduled opposite-basis checks.
	var comms []commConstraint
	if commute {
		myQubits := map[int][]WD{} // data qubit -> slots of this check
		for _, wi := range wins {
			for _, q := range s.Windows[wi].Data {
				myQubits[q] = append(myQubits[q], WD{wi, q})
			}
		}
		for cj := range scheduled {
			if code.Checks[cj].Basis == code.Checks[ci].Basis {
				continue
			}
			tj := s.checkTimes(phase, cj)
			var cc commConstraint
			for q, t2 := range tj {
				if slots, ok := myQubits[q]; ok {
					cc.vars = append(cc.vars, slots[0])
					cc.other = append(cc.other, t2)
				}
			}
			if len(cc.vars) > 0 {
				comms = append(comms, cc)
			}
		}
	}
	band := 2 * deltaMax
	// The band must at least cover window-internal congestion: a shared
	// window's fixed times may already exceed it.
	for _, t := range fixed {
		if t+len(vars) > band {
			band = t + len(vars)
		}
	}
	assign := solveCheck(vars, fixed, comms, qubitTimes, phase, s, band)
	if assign == nil {
		assign = fallbackAssign(vars, fixed, comms, qubitTimes, phase, s)
		if assign == nil {
			return fmt.Errorf("schedule: no feasible schedule for check %d", ci)
		}
	}
	for wd, t := range assign {
		phase.Times[wd] = t
		if qubitTimes[wd.Q] == nil {
			qubitTimes[wd.Q] = map[int]bool{}
		}
		qubitTimes[wd.Q][t] = true
	}
	return nil
}

// solveCheck is the exact branch-and-bound CSP solver (the CPLEX
// stand-in): minimize the check's tmax subject to data-qubit uniqueness,
// window-internal distinctness and commutation constraints.
func solveCheck(vars []WD, fixed map[WD]int, comms []commConstraint, qubitTimes map[int]map[int]bool, phase *Phase, s *Schedule, band int) map[WD]int {
	if len(vars) == 0 {
		return map[WD]int{}
	}
	// Window occupancy within this check (fixed times count).
	winUsed := map[int]map[int]bool{}
	markWin := func(w, t int, on bool) {
		if winUsed[w] == nil {
			winUsed[w] = map[int]bool{}
		}
		winUsed[w][t] = on
	}
	fixedMax := 0
	for wd, t := range fixed {
		markWin(wd.W, t, true)
		if t > fixedMax {
			fixedMax = t
		}
	}
	// Also respect times used by the same window from other checks
	// already in phase.Times (shared windows).
	for _, wi := range phase.Windows {
		for _, q := range s.Windows[wi].Data {
			if t, ok := phase.Times[WD{wi, q}]; ok {
				markWin(wi, t, true)
			}
		}
	}
	cur := map[WD]int{}
	bestMax := band + 1
	var best map[WD]int
	nodes := 0

	valueOf := func(wd WD) (int, bool) {
		if t, ok := cur[wd]; ok {
			return t, true
		}
		if t, ok := fixed[wd]; ok {
			return t, true
		}
		return 0, false
	}
	checkComms := func(lastVar WD) bool {
		for _, cc := range comms {
			relevant := false
			complete := true
			neg := 0
			for i, wd := range cc.vars {
				if wd == lastVar {
					relevant = true
				}
				t, ok := valueOf(wd)
				if !ok {
					complete = false
					break
				}
				if t < cc.other[i] {
					neg++
				}
			}
			if relevant && complete && neg%2 != 0 {
				return false
			}
		}
		return true
	}

	var dfs func(idx, curMax int) bool // returns false on budget exhaustion
	dfs = func(idx, curMax int) bool {
		if nodes++; nodes > solverBudget {
			return false
		}
		if curMax >= bestMax {
			return true
		}
		if idx == len(vars) {
			bestMax = curMax
			best = map[WD]int{}
			for k, v := range cur {
				best[k] = v
			}
			return true
		}
		wd := vars[idx]
		for t := 1; t <= band && t < bestMax; t++ {
			if qubitTimes[wd.Q][t] {
				continue
			}
			if winUsed[wd.W][t] {
				continue
			}
			// A data qubit appearing in several windows of this check
			// (rare) must also self-avoid.
			conflict := false
			for prev, pt := range cur {
				if prev.Q == wd.Q && pt == t {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			cur[wd] = t
			markWin(wd.W, t, true)
			if checkComms(wd) {
				nm := curMax
				if t > nm {
					nm = t
				}
				if !dfs(idx+1, nm) {
					delete(cur, wd)
					markWin(wd.W, t, false)
					return false
				}
			}
			delete(cur, wd)
			markWin(wd.W, t, false)
		}
		return true
	}
	dfs(0, fixedMax)
	return best
}

// fallbackAssign places the unassigned slots at fresh timesteps past
// every existing assignment, then verifies commutation; it is the
// guaranteed-feasible worst-case placement.
func fallbackAssign(vars []WD, fixed map[WD]int, comms []commConstraint, qubitTimes map[int]map[int]bool, phase *Phase, s *Schedule) map[WD]int {
	maxT := 0
	for _, t := range phase.Times {
		if t > maxT {
			maxT = t
		}
	}
	for _, t := range fixed {
		if t > maxT {
			maxT = t
		}
	}
	assign := map[WD]int{}
	t := maxT
	for _, wd := range vars {
		t++
		assign[wd] = t
	}
	// Verify commutation with the combined assignment.
	lookup := func(wd WD) (int, bool) {
		if v, ok := assign[wd]; ok {
			return v, true
		}
		if v, ok := fixed[wd]; ok {
			return v, true
		}
		return 0, false
	}
	for _, cc := range comms {
		neg := 0
		for i, wd := range cc.vars {
			v, ok := lookup(wd)
			if !ok {
				return nil
			}
			if v < cc.other[i] {
				neg++
			}
		}
		if neg%2 != 0 {
			return nil
		}
	}
	return assign
}
