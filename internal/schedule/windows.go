// Package schedule implements syndrome-extraction scheduling: the
// paper's greedy per-check algorithm (Algorithm 1) with an exact
// branch-and-bound solver standing in for CPLEX, the flag/proxy
// modifications of §V-G, the worst-case disjoint baseline, and the
// lowering of a schedule into a per-round physical operation plan with
// the paper's latency model (890 ns + 40 ns per CNOT step).
package schedule

import (
	"fmt"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// Window is one syndrome-extraction interaction window: either a flag
// qubit relaying a group of data qubits to one or more parity qubits of
// the same basis, or a parity qubit interacting with data directly.
type Window struct {
	Basis    css.Basis
	Flag     int   // physical flag qubit, or -1 for a direct window
	Parities []int // physical parity qubit ids served
	Checks   []int // check indices served (aligned with Parities)
	Data     []int // data qubits with CNOTs inside this window
}

// buildWindows derives the window set from a network's wiring. Flag
// groups on the same physical flag with the same basis merge into a
// single multi-relay window (flag sharing within a basis); a direct
// window is created per check with direct data.
func buildWindows(net *fpn.Network) []Window {
	type key struct {
		flag  int
		basis css.Basis
	}
	var windows []Window
	index := map[key]int{}
	for _, w := range net.Wiring {
		basis := net.Code.Checks[w.Check].Basis
		parity := net.ParityQubit[w.Check]
		for _, g := range w.Groups {
			k := key{g.Flag, basis}
			wi, ok := index[k]
			if !ok {
				wi = len(windows)
				index[k] = wi
				windows = append(windows, Window{
					Basis: basis,
					Flag:  g.Flag,
					Data:  append([]int(nil), g.Data...),
				})
			}
			windows[wi].Parities = append(windows[wi].Parities, parity)
			windows[wi].Checks = append(windows[wi].Checks, w.Check)
		}
		if len(w.Direct) > 0 {
			windows = append(windows, Window{
				Basis:    basis,
				Flag:     -1,
				Parities: []int{parity},
				Checks:   []int{w.Check},
				Data:     append([]int(nil), w.Direct...),
			})
		}
	}
	return windows
}

// needsSplit reports whether any physical flag serves windows of both
// bases, forcing X and Z extraction into disjoint phases.
func needsSplit(windows []Window) bool {
	basis := map[int]css.Basis{}
	for _, w := range windows {
		if w.Flag < 0 {
			continue
		}
		if b, ok := basis[w.Flag]; ok && b != w.Basis {
			return true
		}
		basis[w.Flag] = w.Basis
	}
	return false
}

// WD keys a (window, data-qubit) CNOT assignment.
type WD struct {
	W int // window index
	Q int // data qubit
}

// Phase is one scheduling phase: either the full round, or the Z / X half
// of a split round.
type Phase struct {
	Basis   css.Basis // meaningful when the schedule is split
	Windows []int
	Times   map[WD]int // 1-based data CNOT timesteps
	Steps   int
}

// Schedule is the complete CNOT schedule of one syndrome-extraction
// round.
type Schedule struct {
	Net     *fpn.Network
	Windows []Window
	Split   bool
	Phases  []Phase
}

// checkTimes returns, for check ci, a map data-qubit → timestep within
// the phase containing that check.
func (s *Schedule) checkTimes(phase *Phase, ci int) map[int]int {
	out := map[int]int{}
	for _, wi := range phase.Windows {
		w := s.Windows[wi]
		serves := false
		for _, c := range w.Checks {
			if c == ci {
				serves = true
				break
			}
		}
		if !serves {
			continue
		}
		for _, q := range w.Data {
			if t, ok := phase.Times[WD{wi, q}]; ok {
				out[q] = t
			}
		}
	}
	return out
}

// Validate checks the uniqueness and commutation constraints of §V-A and
// the flag-window internal constraints; it is used both in tests and as a
// post-condition of the greedy algorithm.
func (s *Schedule) Validate() error {
	for pi := range s.Phases {
		phase := &s.Phases[pi]
		// Data-qubit uniqueness and window-internal distinctness.
		qubitTimes := map[int]map[int]bool{}
		for _, wi := range phase.Windows {
			w := s.Windows[wi]
			winTimes := map[int]bool{}
			for _, q := range w.Data {
				t, ok := phase.Times[WD{wi, q}]
				if !ok {
					return fmt.Errorf("schedule: window %d qubit %d unscheduled", wi, q)
				}
				if t < 1 {
					return fmt.Errorf("schedule: non-positive time %d", t)
				}
				if winTimes[t] {
					return fmt.Errorf("schedule: window %d reuses time %d", wi, t)
				}
				winTimes[t] = true
				if qubitTimes[q] == nil {
					qubitTimes[q] = map[int]bool{}
				}
				if qubitTimes[q][t] {
					return fmt.Errorf("schedule: data qubit %d does two CNOTs at time %d", q, t)
				}
				qubitTimes[q][t] = true
			}
		}
		// Commutation between opposite-basis checks in the same phase.
		code := s.Net.Code
		var checks []int
		seen := map[int]bool{}
		for _, wi := range phase.Windows {
			for _, c := range s.Windows[wi].Checks {
				if !seen[c] {
					seen[c] = true
					checks = append(checks, c)
				}
			}
		}
		sort.Ints(checks)
		for i := 0; i < len(checks); i++ {
			for j := i + 1; j < len(checks); j++ {
				ci, cj := checks[i], checks[j]
				if code.Checks[ci].Basis == code.Checks[cj].Basis {
					continue
				}
				ti := s.checkTimes(phase, ci)
				tj := s.checkTimes(phase, cj)
				neg := 0
				shared := 0
				for q, t1 := range ti {
					if t2, ok := tj[q]; ok {
						shared++
						if t1 == t2 {
							return fmt.Errorf("schedule: checks %d/%d share qubit %d at equal time", ci, cj, q)
						}
						if t1 < t2 {
							neg++
						}
					}
				}
				if shared > 0 && neg%2 != 0 {
					return fmt.Errorf("schedule: commutation violated between checks %d and %d", ci, cj)
				}
			}
		}
	}
	return nil
}

// Steps returns the total number of data-CNOT timesteps across phases.
func (s *Schedule) Steps() int {
	total := 0
	for _, p := range s.Phases {
		total += p.Steps
	}
	return total
}
