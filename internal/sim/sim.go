// Package sim is the Pauli-frame sampler (the Stim substitute): it
// propagates X/Z error frames through Clifford circuits with 64 shots
// bit-packed per machine word, samples the paper's noise channels with
// geometric skip-sampling, and reads out detector and observable flips.
// A deterministic injection mode drives the detector-error-model
// extraction in package dem.
package sim

import (
	"math"
	"math/rand"

	"github.com/fpn/flagproxy/internal/circuit"
)

// Result holds per-shot detector and observable flip bits, packed 64
// shots per word.
type Result struct {
	Shots       int
	Words       int
	Detectors   [][]uint64 // [detector][word]
	Observables [][]uint64
	MeasFlips   [][]uint64 // [measurement][word]
}

// DetectorBit reports whether detector d fired in shot s.
func (r *Result) DetectorBit(d, s int) bool {
	return r.Detectors[d][s/64]>>(uint(s)%64)&1 == 1
}

// ObservableBit reports whether observable o flipped in shot s.
func (r *Result) ObservableBit(o, s int) bool {
	return r.Observables[o][s/64]>>(uint(s)%64)&1 == 1
}

// Pauli is a sparse Pauli operator used for deterministic injection.
type Pauli struct {
	Qubit int
	X, Z  bool
}

// Injection plants a Pauli error (or measurement flip) in a given lane
// immediately after op OpIndex executes.
type Injection struct {
	OpIndex int
	Lane    int
	Paulis  []Pauli
	// IsMeasFlip flips measurement record FlipMeas instead of injecting a
	// Pauli (used for misread faults). The flip is applied after the
	// whole circuit runs, so it cannot be clobbered by the measurement.
	IsMeasFlip bool
	FlipMeas   int
}

type frameSim struct {
	c      *circuit.Circuit
	words  int
	shots  int
	fx, fz [][]uint64
	meas   [][]uint64
	rng    *rand.Rand

	measBases []int // lazily computed first-measurement index per op
}

// Run samples the circuit with its annotated noise for the given number
// of shots.
func Run(c *circuit.Circuit, shots int, seed int64) *Result {
	fs := newFrameSim(c, shots, seed)
	for oi, op := range c.Ops {
		fs.apply(oi, op, true, nil)
	}
	return fs.result()
}

// RunDeterministic executes the circuit with all noise channels disabled
// and the given faults injected; lane l of the result reflects exactly
// the faults with Lane == l.
func RunDeterministic(c *circuit.Circuit, shots int, inj []Injection) *Result {
	fs := newFrameSim(c, shots, 0)
	byOp := map[int][]Injection{}
	var measFlips []Injection
	for _, in := range inj {
		if in.IsMeasFlip {
			measFlips = append(measFlips, in)
			continue
		}
		byOp[in.OpIndex] = append(byOp[in.OpIndex], in)
	}
	for oi, op := range c.Ops {
		fs.apply(oi, op, false, byOp[oi])
	}
	for _, in := range measFlips {
		setBit(fs.meas[in.FlipMeas], in.Lane)
	}
	return fs.result()
}

func newFrameSim(c *circuit.Circuit, shots int, seed int64) *frameSim {
	words := (shots + 63) / 64
	fs := &frameSim{c: c, words: words, shots: shots, rng: rand.New(rand.NewSource(seed))}
	fs.fx = make([][]uint64, c.NumQubits)
	fs.fz = make([][]uint64, c.NumQubits)
	for q := range fs.fx {
		fs.fx[q] = make([]uint64, words)
		fs.fz[q] = make([]uint64, words)
	}
	fs.meas = make([][]uint64, c.NumMeas)
	for m := range fs.meas {
		fs.meas[m] = make([]uint64, words)
	}
	return fs
}

func (fs *frameSim) result() *Result {
	r := &Result{Shots: fs.shots, Words: fs.words, MeasFlips: fs.meas}
	for _, d := range fs.c.Detectors {
		acc := make([]uint64, fs.words)
		for _, m := range d.Meas {
			for w := range acc {
				acc[w] ^= fs.meas[m][w]
			}
		}
		r.Detectors = append(r.Detectors, acc)
	}
	for _, o := range fs.c.Observables {
		acc := make([]uint64, fs.words)
		for _, m := range o {
			for w := range acc {
				acc[w] ^= fs.meas[m][w]
			}
		}
		r.Observables = append(r.Observables, acc)
	}
	return r
}

// forEachLane visits lanes selected i.i.d. with probability p, using
// geometric skip-sampling so the cost is proportional to the number of
// hits rather than the number of shots.
func (fs *frameSim) forEachLane(p float64, f func(lane int)) {
	if p <= 0 {
		return
	}
	if p >= 1 {
		for l := 0; l < fs.shots; l++ {
			f(l)
		}
		return
	}
	logq := math.Log1p(-p)
	l := 0
	for {
		u := fs.rng.Float64()
		skip := int(math.Log(1-u) / logq)
		l += skip
		if l >= fs.shots {
			return
		}
		f(l)
		l++
	}
}

func setBit(row []uint64, lane int) { row[lane/64] ^= 1 << (uint(lane) % 64) }

func (fs *frameSim) apply(opIndex int, op circuit.Op, noisy bool, inj []Injection) {
	switch op.Kind {
	case circuit.OpCX:
		for _, p := range op.Pairs {
			c, t := p[0], p[1]
			for w := 0; w < fs.words; w++ {
				fs.fx[t][w] ^= fs.fx[c][w]
				fs.fz[c][w] ^= fs.fz[t][w]
			}
		}
	case circuit.OpH:
		for _, q := range op.Qubits {
			fs.fx[q], fs.fz[q] = fs.fz[q], fs.fx[q]
		}
	case circuit.OpReset:
		for _, q := range op.Qubits {
			for w := 0; w < fs.words; w++ {
				fs.fx[q][w] = 0
				fs.fz[q][w] = 0
			}
		}
	case circuit.OpMR, circuit.OpM:
		meas := fs.measBase(opIndex)
		for i, q := range op.Qubits {
			m := meas + i
			copy(fs.meas[m], fs.fx[q])
			if noisy && op.FlipProb > 0 {
				fs.forEachLane(op.FlipProb, func(l int) { setBit(fs.meas[m], l) })
			}
			if op.Kind == circuit.OpMR {
				for w := 0; w < fs.words; w++ {
					fs.fx[q][w] = 0
					fs.fz[q][w] = 0
				}
			} else {
				// Terminal measurement: frame beyond is irrelevant.
				for w := 0; w < fs.words; w++ {
					fs.fz[q][w] = 0
				}
			}
		}
	case circuit.OpPauli1:
		if noisy {
			for _, q := range op.Qubits {
				fs.forEachLane(op.PX, func(l int) { setBit(fs.fx[q], l) })
				fs.forEachLane(op.PY, func(l int) { setBit(fs.fx[q], l); setBit(fs.fz[q], l) })
				fs.forEachLane(op.PZ, func(l int) { setBit(fs.fz[q], l) })
			}
		}
	case circuit.OpDepol1:
		if noisy {
			for _, q := range op.Qubits {
				fs.forEachLane(op.P, func(l int) {
					switch fs.rng.Intn(3) {
					case 0:
						setBit(fs.fx[q], l)
					case 1:
						setBit(fs.fx[q], l)
						setBit(fs.fz[q], l)
					case 2:
						setBit(fs.fz[q], l)
					}
				})
			}
		}
	case circuit.OpDepol2:
		if noisy {
			for _, pr := range op.Pairs {
				a, b := pr[0], pr[1]
				fs.forEachLane(op.P, func(l int) {
					k := 1 + fs.rng.Intn(15) // 2-qubit Pauli index, base 4, skipping II
					pa, pb := k/4, k%4
					fs.injectPauliIndex(a, pa, l)
					fs.injectPauliIndex(b, pb, l)
				})
			}
		}
	case circuit.OpXFlip:
		if noisy {
			for _, q := range op.Qubits {
				fs.forEachLane(op.P, func(l int) { setBit(fs.fx[q], l) })
			}
		}
	}
	// Deterministic injections occur after the op's own action.
	for _, in := range inj {
		for _, p := range in.Paulis {
			if p.X {
				setBit(fs.fx[p.Qubit], in.Lane)
			}
			if p.Z {
				setBit(fs.fz[p.Qubit], in.Lane)
			}
		}
	}
}

// injectPauliIndex applies Pauli index 0=I,1=X,2=Y,3=Z to lane l.
func (fs *frameSim) injectPauliIndex(q, idx, l int) {
	switch idx {
	case 1:
		setBit(fs.fx[q], l)
	case 2:
		setBit(fs.fx[q], l)
		setBit(fs.fz[q], l)
	case 3:
		setBit(fs.fz[q], l)
	}
}

// measBase returns the measurement index of the first measurement of the
// op at opIndex, caching the scan.
func (fs *frameSim) measBase(opIndex int) int {
	if fs.measBases == nil {
		fs.measBases = make([]int, len(fs.c.Ops))
		n := 0
		for i, op := range fs.c.Ops {
			fs.measBases[i] = n
			if op.Kind == circuit.OpMR || op.Kind == circuit.OpM {
				n += len(op.Qubits)
			}
		}
	}
	return fs.measBases[opIndex]
}
