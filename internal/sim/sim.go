// Package sim is the Pauli-frame sampler (the Stim substitute): it
// propagates X/Z error frames through Clifford circuits with 64 shots
// bit-packed per machine word, samples the paper's noise channels with
// geometric skip-sampling, and reads out detector and observable flips.
// A deterministic injection mode drives the detector-error-model
// extraction in package dem.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/fpn/flagproxy/internal/circuit"
)

// Result holds per-shot detector and observable flip bits, packed 64
// shots per word.
//
// Whole-word readers (the batch decode path) rely on two guarantees
// that resultInto enforces on every materialization: lanes at or past
// Shots in the final active word are zero, and — because a reused
// Result's rows keep the capacity of the largest run they ever held —
// words at or past Words are zero too. Nothing past Shots is ever
// garbage, whether the row is read bit-by-bit or word-by-word.
type Result struct {
	Shots       int
	Words       int
	Detectors   [][]uint64 // [detector][word]
	Observables [][]uint64
	MeasFlips   [][]uint64 // [measurement][word]
}

// DetectorBit reports whether detector d fired in shot s. Shot indexes
// outside [0, Shots) are a caller bug — typically an off-by-one against
// a partial tail block — and panic with the offending index rather than
// silently reading a masked (or stale) lane.
func (r *Result) DetectorBit(d, s int) bool {
	if uint(s) >= uint(r.Shots) {
		panic(fmt.Sprintf("sim: DetectorBit(%d, %d): shot %d outside [0, %d)", d, s, s, r.Shots))
	}
	return r.Detectors[d][s/64]>>(uint(s)%64)&1 == 1
}

// ObservableBit reports whether observable o flipped in shot s. Like
// DetectorBit it panics, naming the shot index, when s is out of range.
func (r *Result) ObservableBit(o, s int) bool {
	if uint(s) >= uint(r.Shots) {
		panic(fmt.Sprintf("sim: ObservableBit(%d, %d): shot %d outside [0, %d)", o, s, s, r.Shots))
	}
	return r.Observables[o][s/64]>>(uint(s)%64)&1 == 1
}

// DetectorWord returns the 64-lane word w of detector d's row. Lanes at
// or past Shots are guaranteed zero (see the Result contract).
func (r *Result) DetectorWord(d, w int) uint64 { return r.Detectors[d][w] }

// ObservableWord returns the 64-lane word w of observable o's row, with
// the same tail-lane guarantee as DetectorWord.
func (r *Result) ObservableWord(o, w int) uint64 { return r.Observables[o][w] }

// Pauli is a sparse Pauli operator used for deterministic injection.
type Pauli struct {
	Qubit int
	X, Z  bool
}

// Injection plants a Pauli error (or measurement flip) in a given lane
// immediately after op OpIndex executes.
type Injection struct {
	OpIndex int
	Lane    int
	Paulis  []Pauli
	// IsMeasFlip flips measurement record FlipMeas instead of injecting a
	// Pauli (used for misread faults). The flip is applied after the
	// whole circuit runs, so it cannot be clobbered by the measurement.
	IsMeasFlip bool
	FlipMeas   int
}

type frameSim struct {
	c        *circuit.Circuit
	words    int // words active in the current run
	capWords int // words allocated (capacity ceiling)
	shots    int
	fx, fz   [][]uint64
	meas     [][]uint64
	src      rand.Source
	rng      *rand.Rand

	// Block mode (BlockSampler): every 64-shot word consumes its own
	// RNG stream so a block's outcome is independent of how blocks are
	// batched into passes. nil in classic whole-run mode.
	wordSrcs []rand.Source
	wordRngs []*rand.Rand
	// cur is the stream noise channels must draw from: the run-wide rng
	// in classic mode, the active word's rng in block mode.
	cur *rand.Rand

	measBases []int // lazily computed first-measurement index per op
}

// Run samples the circuit with its annotated noise for the given number
// of shots.
func Run(c *circuit.Circuit, shots int, seed int64) *Result {
	fs := newFrameSim(c, shots, seed)
	for oi, op := range c.Ops {
		fs.apply(oi, op, true, nil)
	}
	return fs.result()
}

// RunDeterministic executes the circuit with all noise channels disabled
// and the given faults injected; lane l of the result reflects exactly
// the faults with Lane == l.
func RunDeterministic(c *circuit.Circuit, shots int, inj []Injection) *Result {
	fs := newFrameSim(c, shots, 0)
	byOp := map[int][]Injection{}
	var measFlips []Injection
	for _, in := range inj {
		if in.IsMeasFlip {
			measFlips = append(measFlips, in)
			continue
		}
		byOp[in.OpIndex] = append(byOp[in.OpIndex], in)
	}
	for oi, op := range c.Ops {
		fs.apply(oi, op, false, byOp[oi])
	}
	for _, in := range measFlips {
		setBit(fs.meas[in.FlipMeas], in.Lane)
	}
	return fs.result()
}

func newFrameSim(c *circuit.Circuit, shots int, seed int64) *frameSim {
	words := (shots + 63) / 64
	src := rand.NewSource(seed)
	fs := &frameSim{c: c, words: words, capWords: words, shots: shots, src: src, rng: rand.New(src)}
	fs.cur = fs.rng
	fs.fx = make([][]uint64, c.NumQubits)
	fs.fz = make([][]uint64, c.NumQubits)
	for q := range fs.fx {
		fs.fx[q] = make([]uint64, words)
		fs.fz[q] = make([]uint64, words)
	}
	fs.meas = make([][]uint64, c.NumMeas)
	for m := range fs.meas {
		fs.meas[m] = make([]uint64, words)
	}
	return fs
}

// reset rewinds the simulator for a fresh run of shots lanes (at most
// the allocated capacity) with a new RNG seed, reusing every buffer.
func (fs *frameSim) reset(shots int, seed int64) {
	fs.shots = shots
	fs.words = (shots + 63) / 64
	for q := range fs.fx {
		clear(fs.fx[q])
		clear(fs.fz[q])
	}
	fs.src.Seed(seed)
}

func (fs *frameSim) result() *Result {
	r := &Result{}
	fs.resultInto(r)
	return r
}

// resultInto accumulates detector and observable rows into r, reusing
// r's buffers when it has been filled by this frameSim before. The
// result aliases fs.meas.
func (fs *frameSim) resultInto(r *Result) {
	r.Shots = fs.shots
	r.Words = fs.words
	r.MeasFlips = fs.meas
	if r.Detectors == nil {
		r.Detectors = make([][]uint64, len(fs.c.Detectors))
		for d := range r.Detectors {
			r.Detectors[d] = make([]uint64, fs.capWords)
		}
		r.Observables = make([][]uint64, len(fs.c.Observables))
		for o := range r.Observables {
			r.Observables[o] = make([]uint64, fs.capWords)
		}
	}
	for d, det := range fs.c.Detectors {
		acc := r.Detectors[d][:fs.words]
		clear(acc)
		for _, m := range det.Meas {
			row := fs.meas[m]
			for w := range acc {
				acc[w] ^= row[w]
			}
		}
	}
	for o, obs := range fs.c.Observables {
		acc := r.Observables[o][:fs.words]
		clear(acc)
		for _, m := range obs {
			row := fs.meas[m]
			for w := range acc {
				acc[w] ^= row[w]
			}
		}
	}
	// Tail-lane guarantee: a reused Result's rows keep the capacity of
	// the largest run they ever held, so a shorter run would otherwise
	// leave the previous run's bits in the words past fs.words — garbage
	// a whole-word reader (the batch decode path, or anything ranging
	// over a full row) would see past Shots. Mask the unused high lanes
	// of the final active word and zero every capacity word beyond it.
	if fs.words == 0 {
		return
	}
	tailMask := ^uint64(0)
	if tail := uint(fs.shots) % 64; tail != 0 {
		tailMask = (uint64(1) << tail) - 1
	}
	for d := range r.Detectors {
		row := r.Detectors[d]
		row[fs.words-1] &= tailMask
		clear(row[fs.words:])
	}
	for o := range r.Observables {
		row := r.Observables[o]
		row[fs.words-1] &= tailMask
		clear(row[fs.words:])
	}
}

// forEachLane visits lanes selected i.i.d. with probability p, using
// geometric skip-sampling so the cost is proportional to the number of
// hits rather than the number of shots. In block mode every 64-lane
// word is scanned with its own RNG stream.
func (fs *frameSim) forEachLane(p float64, f func(lane int)) {
	if p <= 0 {
		return
	}
	if fs.wordRngs == nil {
		if p >= 1 {
			for l := 0; l < fs.shots; l++ {
				f(l)
			}
			return
		}
		geomScan(fs.rng, math.Log1p(-p), 0, fs.shots, f)
		return
	}
	if p >= 1 {
		for wi := 0; wi < fs.words; wi++ {
			fs.cur = fs.wordRngs[wi]
			hi := wi*64 + 64
			if hi > fs.shots {
				hi = fs.shots
			}
			for l := wi * 64; l < hi; l++ {
				f(l)
			}
		}
		return
	}
	logq := math.Log1p(-p)
	for wi := 0; wi < fs.words; wi++ {
		lo := wi * 64
		hi := lo + 64
		if hi > fs.shots {
			hi = fs.shots
		}
		fs.cur = fs.wordRngs[wi]
		geomScan(fs.cur, logq, lo, hi, f)
	}
}

// geomScan visits lanes of [lo, hi) selected i.i.d. with hit
// probability p = 1 - exp(logq) by geometric skip-sampling on rng.
func geomScan(rng *rand.Rand, logq float64, lo, hi int, f func(lane int)) {
	l := lo
	for {
		u := rng.Float64()
		skip := int(math.Log(1-u) / logq)
		l += skip
		if l >= hi {
			return
		}
		f(l)
		l++
	}
}

func setBit(row []uint64, lane int) { row[lane/64] ^= 1 << (uint(lane) % 64) }

func (fs *frameSim) apply(opIndex int, op circuit.Op, noisy bool, inj []Injection) {
	switch op.Kind {
	case circuit.OpCX:
		for _, p := range op.Pairs {
			c, t := p[0], p[1]
			for w := 0; w < fs.words; w++ {
				fs.fx[t][w] ^= fs.fx[c][w]
				fs.fz[c][w] ^= fs.fz[t][w]
			}
		}
	case circuit.OpH:
		for _, q := range op.Qubits {
			fs.fx[q], fs.fz[q] = fs.fz[q], fs.fx[q]
		}
	case circuit.OpReset:
		for _, q := range op.Qubits {
			for w := 0; w < fs.words; w++ {
				fs.fx[q][w] = 0
				fs.fz[q][w] = 0
			}
		}
	case circuit.OpMR, circuit.OpM:
		meas := fs.measBase(opIndex)
		for i, q := range op.Qubits {
			m := meas + i
			copy(fs.meas[m], fs.fx[q])
			if noisy && op.FlipProb > 0 {
				fs.forEachLane(op.FlipProb, func(l int) { setBit(fs.meas[m], l) })
			}
			if op.Kind == circuit.OpMR {
				for w := 0; w < fs.words; w++ {
					fs.fx[q][w] = 0
					fs.fz[q][w] = 0
				}
			} else {
				// Terminal measurement: frame beyond is irrelevant.
				for w := 0; w < fs.words; w++ {
					fs.fz[q][w] = 0
				}
			}
		}
	case circuit.OpPauli1:
		if noisy {
			for _, q := range op.Qubits {
				fs.forEachLane(op.PX, func(l int) { setBit(fs.fx[q], l) })
				fs.forEachLane(op.PY, func(l int) { setBit(fs.fx[q], l); setBit(fs.fz[q], l) })
				fs.forEachLane(op.PZ, func(l int) { setBit(fs.fz[q], l) })
			}
		}
	case circuit.OpDepol1:
		if noisy {
			for _, q := range op.Qubits {
				fs.forEachLane(op.P, func(l int) {
					switch fs.cur.Intn(3) {
					case 0:
						setBit(fs.fx[q], l)
					case 1:
						setBit(fs.fx[q], l)
						setBit(fs.fz[q], l)
					case 2:
						setBit(fs.fz[q], l)
					}
				})
			}
		}
	case circuit.OpDepol2:
		if noisy {
			for _, pr := range op.Pairs {
				a, b := pr[0], pr[1]
				fs.forEachLane(op.P, func(l int) {
					k := 1 + fs.cur.Intn(15) // 2-qubit Pauli index, base 4, skipping II
					pa, pb := k/4, k%4
					fs.injectPauliIndex(a, pa, l)
					fs.injectPauliIndex(b, pb, l)
				})
			}
		}
	case circuit.OpXFlip:
		if noisy {
			for _, q := range op.Qubits {
				fs.forEachLane(op.P, func(l int) { setBit(fs.fx[q], l) })
			}
		}
	}
	// Deterministic injections occur after the op's own action.
	for _, in := range inj {
		for _, p := range in.Paulis {
			if p.X {
				setBit(fs.fx[p.Qubit], in.Lane)
			}
			if p.Z {
				setBit(fs.fz[p.Qubit], in.Lane)
			}
		}
	}
}

// injectPauliIndex applies Pauli index 0=I,1=X,2=Y,3=Z to lane l.
func (fs *frameSim) injectPauliIndex(q, idx, l int) {
	switch idx {
	case 1:
		setBit(fs.fx[q], l)
	case 2:
		setBit(fs.fx[q], l)
		setBit(fs.fz[q], l)
	case 3:
		setBit(fs.fz[q], l)
	}
}

// measBase returns the measurement index of the first measurement of the
// op at opIndex, caching the scan.
func (fs *frameSim) measBase(opIndex int) int {
	if fs.measBases == nil {
		fs.measBases = make([]int, len(fs.c.Ops))
		n := 0
		for i, op := range fs.c.Ops {
			fs.measBases[i] = n
			if op.Kind == circuit.OpMR || op.Kind == circuit.OpM {
				n += len(op.Qubits)
			}
		}
	}
	return fs.measBases[opIndex]
}
