package sim

import (
	"fmt"
	"math/rand"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/seedmix"
)

// Sampler runs one circuit many times while reusing every simulation
// buffer, so a worker that samples shard after shard of a Monte-Carlo
// run allocates nothing per shard. Construct one Sampler per goroutine;
// a Sampler is not safe for concurrent use.
type Sampler struct {
	fs  *frameSim
	max int
	res Result
}

// NewSampler builds a reusable sampler for the circuit with capacity
// for maxShots lanes per Run call.
func NewSampler(c *circuit.Circuit, maxShots int) *Sampler {
	return &Sampler{fs: newFrameSim(c, maxShots, 0), max: maxShots}
}

// Validate reports whether a Run call with this shot count would be
// legal: shots must lie in (0, maxShots]. Callers that receive shot
// counts from external input should Validate first — Run treats an
// out-of-range count as a programming error and panics.
func (s *Sampler) Validate(shots int) error {
	if shots <= 0 || shots > s.max {
		return fmt.Errorf("sim: Sampler shots %d outside (0, %d]", shots, s.max)
	}
	return nil
}

// Run samples the circuit with its annotated noise for shots lanes
// using the given RNG seed. The stream is fully determined by (circuit,
// shots, seed): reusing a Sampler yields bit-identical results to a
// fresh one. The returned Result aliases the sampler's buffers and is
// valid only until the next Run call. Run panics if shots is out of
// range; use Validate to check untrusted counts.
func (s *Sampler) Run(shots int, seed int64) *Result {
	if err := s.Validate(shots); err != nil {
		panic(err)
	}
	s.fs.reset(shots, seed)
	for oi, op := range s.fs.c.Ops {
		s.fs.apply(oi, op, true, nil)
	}
	s.fs.resultInto(&s.res)
	return &s.res
}

// BlockSampler samples a circuit in multi-block passes where every
// 64-shot block (one bit-packed word) consumes its own RNG stream
// seeded seedmix.Derive(base, blockIndex). A block's outcome therefore
// depends only on (circuit, base, blockIndex) — never on how blocks are
// grouped into passes — which is what lets a sharded Monte-Carlo run
// batch an entire shard per pass while staying bit-identical for any
// shard size. A single-block pass reproduces Sampler.Run(64,
// Derive(base, blockIndex)) exactly. Not safe for concurrent use.
type BlockSampler struct {
	fs  *frameSim
	max int // capacity in blocks
	res Result
}

// NewBlockSampler builds a reusable block-mode sampler with capacity
// for maxBlocks 64-shot blocks per Run call.
func NewBlockSampler(c *circuit.Circuit, maxBlocks int) *BlockSampler {
	fs := newFrameSim(c, maxBlocks*64, 0)
	fs.wordSrcs = make([]rand.Source, maxBlocks)
	fs.wordRngs = make([]*rand.Rand, maxBlocks)
	for i := range fs.wordSrcs {
		fs.wordSrcs[i] = rand.NewSource(0)
		fs.wordRngs[i] = rand.New(fs.wordSrcs[i])
	}
	return &BlockSampler{fs: fs, max: maxBlocks}
}

// Validate reports whether a Run call with these arguments would be
// legal: firstBlock must be non-negative and shots must lie in
// (0, maxBlocks*64]. Callers that receive shot counts from external
// input should Validate first — Run treats out-of-range arguments as a
// programming error and panics.
func (s *BlockSampler) Validate(firstBlock, shots int) error {
	if firstBlock < 0 {
		return fmt.Errorf("sim: BlockSampler firstBlock %d is negative", firstBlock)
	}
	if shots <= 0 || shots > s.max*64 {
		return fmt.Errorf("sim: BlockSampler shots %d outside (0, %d]", shots, s.max*64)
	}
	return nil
}

// Run samples shots lanes as consecutive blocks firstBlock,
// firstBlock+1, …; lane l belongs to block firstBlock + l/64. The
// returned Result aliases the sampler's buffers and is valid only until
// the next Run call. Run panics if the arguments are out of range; use
// Validate to check untrusted counts.
func (s *BlockSampler) Run(firstBlock, shots int, base int64) *Result {
	if err := s.Validate(firstBlock, shots); err != nil {
		panic(err)
	}
	s.fs.reset(shots, 0)
	for wi := 0; wi < s.fs.words; wi++ {
		s.fs.wordSrcs[wi].Seed(seedmix.Derive(base, uint64(firstBlock+wi)))
	}
	for oi, op := range s.fs.c.Ops {
		s.fs.apply(oi, op, true, nil)
	}
	s.fs.resultInto(&s.res)
	return &s.res
}
