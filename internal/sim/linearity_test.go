package sim

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// Pauli frames are linear: the detector footprint of two injected faults
// is the XOR of their individual footprints. This property underpins the
// whole detector-error-model approach, so we verify it on the real
// [[30,8,3,3]] FPN circuit with random fault pairs.
func TestPropertyFrameLinearity(t *testing.T) {
	code := hyper55(t)
	c := memoryCircuit(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 2, nil)
	rng := rand.New(rand.NewSource(13))

	// Collect candidate injection sites: random Paulis after random ops.
	randFault := func() Injection {
		return Injection{
			OpIndex: rng.Intn(len(c.Ops)),
			Paulis: []Pauli{{
				Qubit: rng.Intn(c.NumQubits),
				X:     rng.Intn(2) == 1,
				Z:     rng.Intn(2) == 1,
			}},
		}
	}
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		fa, fb := randFault(), randFault()
		// Lane 0: fault a; lane 1: fault b; lane 2: both.
		var inj []Injection
		a0, b1 := fa, fb
		a0.Lane, b1.Lane = 0, 1
		a2, b2 := fa, fb
		a2.Lane, b2.Lane = 2, 2
		inj = append(inj, a0, b1, a2, b2)
		res := RunDeterministic(c, 3, inj)
		for d := range c.Detectors {
			want := res.DetectorBit(d, 0) != res.DetectorBit(d, 1)
			if res.DetectorBit(d, 2) != want {
				t.Fatalf("trial %d: detector %d violates linearity", trial, d)
			}
		}
		for o := range c.Observables {
			want := res.ObservableBit(o, 0) != res.ObservableBit(o, 1)
			if res.ObservableBit(o, 2) != want {
				t.Fatalf("trial %d: observable %d violates linearity", trial, o)
			}
		}
	}
}

// Sampling must be reproducible for a fixed seed and differ across
// seeds.
func TestSamplerDeterminism(t *testing.T) {
	code := hyper55(t)
	nmP := 2e-3
	c := memoryCircuitNoisy(t, code, nmP)
	r1 := Run(c, 256, 99)
	r2 := Run(c, 256, 99)
	r3 := Run(c, 256, 100)
	same, diff := true, false
	for d := range c.Detectors {
		for w := range r1.Detectors[d] {
			if r1.Detectors[d][w] != r2.Detectors[d][w] {
				same = false
			}
			if r1.Detectors[d][w] != r3.Detectors[d][w] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different samples")
	}
	if !diff {
		t.Fatal("different seeds produced identical samples")
	}
}

func memoryCircuitNoisy(t *testing.T, code *css.Code, p float64) *circuit.Circuit {
	t.Helper()
	return memoryCircuitWithNoise(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 2, p)
}
