package sim

import (
	"strings"
	"testing"

	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
)

// assertCleanPastShots requires every detector and observable lane at or
// past r.Shots — the tail lanes of the final active word and every
// capacity word beyond Words — to be zero, the way a whole-word reader
// (the batch decode path) sees the rows.
func assertCleanPastShots(t *testing.T, r *Result, label string) {
	t.Helper()
	tailMask := ^uint64(0)
	if tail := uint(r.Shots) % 64; tail != 0 {
		tailMask = (uint64(1) << tail) - 1
	}
	check := func(kind string, rows [][]uint64) {
		for i, row := range rows {
			if g := row[r.Words-1] &^ tailMask; g != 0 {
				t.Fatalf("%s: %s %d has garbage %#x in the tail lanes of word %d (Shots=%d)",
					label, kind, i, g, r.Words-1, r.Shots)
			}
			for w := r.Words; w < len(row); w++ {
				if row[w] != 0 {
					t.Fatalf("%s: %s %d has stale word %#x at index %d past Words=%d (Shots=%d)",
						label, kind, i, row[w], w, r.Words, r.Shots)
				}
			}
		}
	}
	check("detector", r.Detectors)
	check("observable", r.Observables)
}

// TestResultCleanPastShotsAfterShrink is the tail-lane regression test:
// a reused sampler Result whose previous run was larger must not leak
// the old run's bits past the new Shots — neither into the unused high
// lanes of the final word nor into the capacity words beyond Words.
func TestResultCleanPastShotsAfterShrink(t *testing.T) {
	code := steane(t)
	// An aggressive physical rate so essentially every word of the large
	// run carries set bits — the garbage the shrink must erase.
	c := memoryCircuitWithNoise(t, code, fpn.Options{UseFlags: true, MaxDegree: 4}, 'Z', 3, 0.2)

	s := NewSampler(c, 256)
	big := s.Run(256, 7)
	set := 0
	for _, row := range big.Detectors {
		for _, w := range row {
			if w != 0 {
				set++
			}
		}
	}
	if set == 0 {
		t.Fatal("large run produced no detector bits; the shrink check would be vacuous")
	}
	for _, shots := range []int{100, 64, 1} {
		assertCleanPastShots(t, s.Run(shots, 8), "Sampler shrink")
	}

	bs := NewBlockSampler(c, 4)
	bs.Run(0, 256, 7)
	for _, shots := range []int{100, 64, 33} {
		assertCleanPastShots(t, bs.Run(1, shots, 9), "BlockSampler shrink")
	}
}

// TestResultBitAccessorsPanicPastShots pins the bounds-check contract:
// reading a shot at or past Shots panics with the offending shot index
// in the message instead of silently returning a masked lane.
func TestResultBitAccessorsPanicPastShots(t *testing.T) {
	code := steane(t)
	c := memoryCircuit(t, code, fpn.Options{UseFlags: true, MaxDegree: 4}, 'Z', 2, &noise.Model{P: 1e-3})
	res := Run(c, 100, 3)

	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s past Shots did not panic", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "100") || !strings.Contains(msg, name) {
				t.Fatalf("%s panic %q does not name the accessor and the shot bound", name, r)
			}
		}()
		f()
	}
	wantPanic("DetectorBit", func() { res.DetectorBit(0, 100) })
	wantPanic("ObservableBit", func() { res.ObservableBit(0, 100) })
	wantPanic("DetectorBit", func() { res.DetectorBit(0, -1) })

	// In-range reads still work and the last valid lane is readable.
	_ = res.DetectorBit(0, 99)
	_ = res.ObservableBit(0, 0)
}
