package sim

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func steane(t *testing.T) *css.Code {
	t.Helper()
	sups := [][]int{{0, 1, 2, 3}, {1, 2, 4, 5}, {2, 3, 5, 6}}
	var checks []css.Check
	for _, b := range []css.Basis{css.X, css.Z} {
		for _, s := range sups {
			checks = append(checks, css.Check{Basis: b, Support: s, Color: -1})
		}
	}
	c, err := css.New("steane", "test", 7, checks)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func hyper55(t *testing.T) *css.Code {
	t.Helper()
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err := surface.FromMap(m, "hysc-30", "hyperbolic-surface {5,5}")
		if err == nil {
			return code
		}
	}
	t.Fatal("no [[30,8,3,3]] code")
	return nil
}

func memoryCircuitWithNoise(t *testing.T, code *css.Code, opt fpn.Options, basis css.Basis, rounds int, p float64) *circuit.Circuit {
	t.Helper()
	return memoryCircuit(t, code, opt, basis, rounds, &noise.Model{P: p})
}

func memoryCircuit(t *testing.T, code *css.Code, opt fpn.Options, basis css.Basis, rounds int, nm *noise.Model) *circuit.Circuit {
	t.Helper()
	net, err := fpn.Build(code, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: basis, Rounds: rounds, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The fundamental functional test: a noiseless memory experiment must
// produce zero on every detector and observable. This exercises the full
// stack (FPN wiring, flag circuits, proxy ladders, scheduling,
// commutation, detector definitions).
func TestNoiselessDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		code  *css.Code
		opt   fpn.Options
		basis css.Basis
	}{
		{"steane-direct-Z", steane(t), fpn.Options{}, css.Z},
		{"steane-direct-X", steane(t), fpn.Options{}, css.X},
		{"steane-flags-Z", steane(t), fpn.Options{UseFlags: true}, css.Z},
		{"steane-flags-X", steane(t), fpn.Options{UseFlags: true}, css.X},
		{"hysc30-fpn-Z", hyper55(t), fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z},
		{"hysc30-fpn-X", hyper55(t), fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.X},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := memoryCircuit(t, tc.code, tc.opt, tc.basis, 3, nil)
			res := Run(c, 64, 1)
			for d := range c.Detectors {
				for w := range res.Detectors[d] {
					if res.Detectors[d][w] != 0 {
						t.Fatalf("detector %d (%+v) fired in noiseless run", d, c.Detectors[d])
					}
				}
			}
			for o := range c.Observables {
				for w := range res.Observables[o] {
					if res.Observables[o][w] != 0 {
						t.Fatalf("observable %d flipped in noiseless run", o)
					}
				}
			}
		})
	}
}

// A planted measurement flip on a mid-round parity measurement must flip
// exactly the two detectors that reference it.
func TestInjectedMeasurementFlip(t *testing.T) {
	code := steane(t)
	c := memoryCircuit(t, code, fpn.Options{}, css.Z, 3, nil)
	// Find a Z-check detector in round 1 and flip its first measurement.
	var target int = -1
	for _, d := range c.Detectors {
		if !d.IsFlag && d.Round == 1 && d.Basis == css.Z {
			target = d.Meas[1] // the round-1 measurement
			break
		}
	}
	if target < 0 {
		t.Fatal("no round-1 Z detector")
	}
	res := RunDeterministic(c, 64, []Injection{{Lane: 0, IsMeasFlip: true, FlipMeas: target}})
	fired := 0
	for d := range c.Detectors {
		if res.DetectorBit(d, 0) {
			fired++
			if !contains(c.Detectors[d].Meas, target) {
				t.Fatal("unrelated detector fired")
			}
		}
	}
	if fired != 2 {
		t.Fatalf("measurement flip fired %d detectors, want 2", fired)
	}
	// Lane 1 must be clean.
	for d := range c.Detectors {
		if res.DetectorBit(d, 1) {
			t.Fatal("uninjected lane fired a detector")
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// A single X data error injected at the start must flip the Z-check
// detectors covering that qubit in round 0, and flip an observable iff
// the qubit is in the logical support.
func TestInjectedDataError(t *testing.T) {
	code := steane(t)
	c := memoryCircuit(t, code, fpn.Options{}, css.Z, 2, nil)
	res := RunDeterministic(c, 64, []Injection{{OpIndex: 0, Lane: 3, Paulis: []Pauli{{Qubit: 0, X: true}}}})
	var fired []circuit.Detector
	for d := range c.Detectors {
		if res.DetectorBit(d, 3) {
			fired = append(fired, c.Detectors[d])
		}
	}
	if len(fired) == 0 {
		t.Fatal("X error fired no detectors")
	}
	for _, d := range fired {
		if d.Basis != css.Z {
			t.Fatalf("X data error fired a %c detector", d.Basis)
		}
		if d.IsFlag {
			t.Fatal("pre-circuit data error should not flag")
		}
		found := false
		for _, q := range code.Checks[d.Check].Support {
			if q == 0 {
				found = true
			}
		}
		if !found {
			t.Fatal("detector of check not covering qubit 0 fired")
		}
	}
	// Qubit 0 is in the support of Z checks {0,1,2,3}: exactly one Z
	// check covers it -> its round-0 detector fires (round 1 pair parity
	// cancels since error persists before round 0: both rounds see it...
	// actually a pre-round-0 error flips round-0 syndrome and stays
	// flipped, so the (r0, r1) pair detector does not fire; the final
	// data readout also reflects it, cancelling the last detector).
	if len(fired) != 1 || fired[0].Round != 0 {
		t.Fatalf("fired = %+v, want single round-0 detector", fired)
	}
}

// Sampled noise statistics: measurement-flip rate on a bare measurement
// should match the configured probability.
func TestNoiseStatisticsMeasFlip(t *testing.T) {
	c := &circuit.Circuit{NumQubits: 1}
	c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0}, FlipProb: 0.25})
	c.Detectors = append(c.Detectors, circuit.Detector{Meas: []int{0}})
	shots := 64000
	res := Run(c, shots, 7)
	count := 0
	for s := 0; s < shots; s++ {
		if res.DetectorBit(0, s) {
			count++
		}
	}
	rate := float64(count) / float64(shots)
	if rate < 0.23 || rate > 0.27 {
		t.Fatalf("flip rate %.4f, want ≈0.25", rate)
	}
}

func TestDepolarize1Statistics(t *testing.T) {
	// X and Y flip a Z measurement; Z doesn't: expected flip rate 2p/3.
	c := &circuit.Circuit{NumQubits: 1}
	c.AddOp(circuit.Op{Kind: circuit.OpDepol1, Qubits: []int{0}, P: 0.3})
	c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0}})
	c.Detectors = append(c.Detectors, circuit.Detector{Meas: []int{0}})
	shots := 64000
	res := Run(c, shots, 11)
	count := 0
	for s := 0; s < shots; s++ {
		if res.DetectorBit(0, s) {
			count++
		}
	}
	rate := float64(count) / float64(shots)
	want := 0.2
	if rate < want-0.02 || rate > want+0.02 {
		t.Fatalf("flip rate %.4f, want ≈%.2f", rate, want)
	}
}

func TestCNOTFramePropagation(t *testing.T) {
	// X on control propagates to target; Z on target propagates to control.
	c := &circuit.Circuit{NumQubits: 2}
	c.AddOp(circuit.Op{Kind: circuit.OpCX, Pairs: [][2]int{{0, 1}}})
	c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0, 1}})
	c.Detectors = append(c.Detectors,
		circuit.Detector{Meas: []int{0}},
		circuit.Detector{Meas: []int{1}})
	// Inject X on qubit 0 before the CNOT: opIndex -1 impossible, so use a
	// leading no-op reset on an unused pattern: inject after op 0 won't
	// work (CNOT already applied). Add explicit init op first.
	c2 := &circuit.Circuit{NumQubits: 2}
	c2.AddOp(circuit.Op{Kind: circuit.OpReset, Qubits: []int{0, 1}})
	c2.AddOp(circuit.Op{Kind: circuit.OpCX, Pairs: [][2]int{{0, 1}}})
	c2.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0, 1}})
	c2.Detectors = append(c2.Detectors,
		circuit.Detector{Meas: []int{0}},
		circuit.Detector{Meas: []int{1}})
	res := RunDeterministic(c2, 64, []Injection{{OpIndex: 0, Lane: 0, Paulis: []Pauli{{Qubit: 0, X: true}}}})
	if !res.DetectorBit(0, 0) || !res.DetectorBit(1, 0) {
		t.Fatal("X on control should flip both Z measurements after CNOT")
	}
}

// Property-style test: in a Z-memory experiment on a closed hyperbolic
// surface code, every single injected Pauli flips an even number of
// Z-syndrome detectors (no boundary).
func TestClosedCodeEvenSyndromeFlips(t *testing.T) {
	code := hyper55(t)
	c := memoryCircuit(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, nil)
	rng := rand.New(rand.NewSource(5))
	var inj []Injection
	for lane := 0; lane < 64; lane++ {
		q := rng.Intn(code.N) // data qubits only: ids 0..N-1
		inj = append(inj, Injection{OpIndex: 0, Lane: lane, Paulis: []Pauli{{Qubit: q, X: true}}})
	}
	res := RunDeterministic(c, 64, inj)
	for lane := 0; lane < 64; lane++ {
		count := 0
		for d := range c.Detectors {
			if c.Detectors[d].IsFlag || c.Detectors[d].Basis != css.Z {
				continue
			}
			if res.DetectorBit(d, lane) {
				count++
			}
		}
		if count%2 != 0 {
			t.Fatalf("lane %d: odd Z-syndrome flip count %d on closed code", lane, count)
		}
	}
}
