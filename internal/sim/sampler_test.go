package sim

import (
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/seedmix"
)

// A reused Sampler must be bit-identical to a fresh one: same circuit,
// shots and seed give the same detector words, no matter what ran on
// the buffers before.
func TestSamplerReuseReproducible(t *testing.T) {
	code := steane(t)
	c := memoryCircuitWithNoise(t, code, fpn.Options{UseFlags: true}, css.Z, 3, 0.01)
	fresh := NewSampler(c, 64)
	first := snapshot(fresh.Run(64, 5))

	reused := NewSampler(c, 64)
	reused.Run(64, 99) // dirty the buffers with a different stream
	reused.Run(17, 3)  // and with a partial block
	again := snapshot(reused.Run(64, 5))

	if len(first) != len(again) {
		t.Fatalf("detector row count changed: %d vs %d", len(first), len(again))
	}
	for d := range first {
		for w := range first[d] {
			if first[d][w] != again[d][w] {
				t.Fatalf("detector %d word %d differs after reuse", d, w)
			}
		}
	}
}

// Sampler runs must match the one-shot Run entry point for a full
// block: both seed a fresh stream the same way.
func TestSamplerMatchesRun(t *testing.T) {
	code := steane(t)
	c := memoryCircuitWithNoise(t, code, fpn.Options{}, css.Z, 2, 0.02)
	want := Run(c, 64, 9)
	got := NewSampler(c, 64).Run(64, 9)
	for d := range want.Detectors {
		if want.Detectors[d][0] != got.Detectors[d][0] {
			t.Fatalf("detector %d differs between Run and Sampler", d)
		}
	}
	for o := range want.Observables {
		if want.Observables[o][0] != got.Observables[o][0] {
			t.Fatalf("observable %d differs between Run and Sampler", o)
		}
	}
}

// Partial blocks must confine noise to the active lanes.
func TestSamplerPartialBlockLanes(t *testing.T) {
	c := &circuit.Circuit{NumQubits: 1}
	c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0}, FlipProb: 1})
	c.Detectors = append(c.Detectors, circuit.Detector{Meas: []int{0}})
	res := NewSampler(c, 64).Run(20, 1)
	if res.Shots != 20 {
		t.Fatalf("Shots = %d, want 20", res.Shots)
	}
	for s := 0; s < 20; s++ {
		if !res.DetectorBit(0, s) {
			t.Fatalf("lane %d: FlipProb=1 did not flip", s)
		}
	}
	if res.Detectors[0][0]>>20 != 0 {
		t.Fatalf("noise leaked beyond the 20 active lanes: %#x", res.Detectors[0][0])
	}
}

// The block-mode contract: a block's outcome must not depend on how
// blocks are grouped into passes. Sixteen blocks sampled in one pass,
// in four 4-block passes, and in sixteen single-block passes must agree
// word for word — and the single-block pass must equal a classic
// Sampler run seeded with the block's derived seed.
func TestBlockSamplerGroupingInvariance(t *testing.T) {
	code := steane(t)
	c := memoryCircuitWithNoise(t, code, fpn.Options{UseFlags: true}, css.Z, 3, 0.01)
	const base = int64(42)
	const blocks = 16

	one := NewBlockSampler(c, blocks)
	whole := snapshot(one.Run(0, blocks*64, base))

	quarters := NewBlockSampler(c, 4)
	singles := NewBlockSampler(c, 1)
	for g := 0; g < 4; g++ {
		part := quarters.Run(g*4, 4*64, base)
		for d := range whole {
			for w := 0; w < 4; w++ {
				if part.Detectors[d][w] != whole[d][g*4+w] {
					t.Fatalf("4-block pass %d: detector %d word %d differs from the 16-block pass", g, d, w)
				}
			}
		}
	}
	smp := NewSampler(c, 64)
	for b := 0; b < blocks; b++ {
		single := singles.Run(b, 64, base)
		classic := smp.Run(64, seedmix.Derive(base, uint64(b)))
		for d := range whole {
			if single.Detectors[d][0] != whole[d][b] {
				t.Fatalf("single-block pass %d: detector %d differs from the 16-block pass", b, d)
			}
			if classic.Detectors[d][0] != whole[d][b] {
				t.Fatalf("block %d detector %d: classic Sampler with the derived seed differs from block mode", b, d)
			}
		}
	}
}

// A partial trailing block must behave the same batched or alone.
func TestBlockSamplerPartialTail(t *testing.T) {
	code := steane(t)
	c := memoryCircuitWithNoise(t, code, fpn.Options{}, css.Z, 2, 0.02)
	const base = int64(7)
	batched := snapshot(NewBlockSampler(c, 3).Run(0, 2*64+20, base))
	tail := NewBlockSampler(c, 1).Run(2, 20, base)
	if tail.Shots != 20 {
		t.Fatalf("tail Shots = %d, want 20", tail.Shots)
	}
	for d := range batched {
		if tail.Detectors[d][0] != batched[d][2] {
			t.Fatalf("detector %d: partial tail differs batched vs alone", d)
		}
	}
}

func snapshot(r *Result) [][]uint64 {
	out := make([][]uint64, len(r.Detectors))
	for d := range r.Detectors {
		out[d] = append([]uint64(nil), r.Detectors[d]...)
	}
	return out
}

// Validate must accept exactly the (0, max] shot range and reject the
// boundary violations on either side, for both sampler flavours.
func TestSamplerValidateBoundaries(t *testing.T) {
	code := steane(t)
	c := memoryCircuitWithNoise(t, code, fpn.Options{}, css.Z, 2, 0.01)
	s := NewSampler(c, 128)
	for _, tc := range []struct {
		name  string
		shots int
		ok    bool
	}{
		{"zero", 0, false},
		{"negative", -1, false},
		{"one", 1, true},
		{"max", 128, true},
		{"max-plus-one", 129, false},
	} {
		err := s.Validate(tc.shots)
		if (err == nil) != tc.ok {
			t.Errorf("Sampler.Validate(%s=%d): err=%v, want ok=%v", tc.name, tc.shots, err, tc.ok)
		}
	}
}

func TestBlockSamplerValidateBoundaries(t *testing.T) {
	code := steane(t)
	c := memoryCircuitWithNoise(t, code, fpn.Options{}, css.Z, 2, 0.01)
	s := NewBlockSampler(c, 2) // capacity 128 shots
	for _, tc := range []struct {
		name       string
		firstBlock int
		shots      int
		ok         bool
	}{
		{"zero-shots", 0, 0, false},
		{"negative-shots", 0, -64, false},
		{"one-shot", 0, 1, true},
		{"max-shots", 0, 128, true},
		{"max-plus-one", 0, 129, false},
		{"negative-block", -1, 64, false},
		{"deep-block", 1 << 30, 64, true},
	} {
		err := s.Validate(tc.firstBlock, tc.shots)
		if (err == nil) != tc.ok {
			t.Errorf("BlockSampler.Validate(%s: first=%d shots=%d): err=%v, want ok=%v",
				tc.name, tc.firstBlock, tc.shots, err, tc.ok)
		}
	}
}

// Run must refuse out-of-range counts loudly (panic with the Validate
// error) rather than silently sampling garbage lanes.
func TestSamplerRunPanicsOutOfRange(t *testing.T) {
	code := steane(t)
	c := memoryCircuitWithNoise(t, code, fpn.Options{}, css.Z, 2, 0.01)
	s := NewSampler(c, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("Run(65) on a 64-lane sampler did not panic")
		}
	}()
	s.Run(65, 1)
}
