package chaos

import (
	"bytes"
	"fmt"
	"os"
)

// TearTail cuts the file's final record roughly in half and drops the
// trailing newline, imitating a foreign writer killed mid-append or a
// filesystem-level truncation — the one damage class the checkpoint
// store must tolerate (dropping the fragment) rather than refuse.
func TearTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: tear tail: %w", err)
	}
	if len(data) == 0 {
		return fmt.Errorf("chaos: tear tail: %s is empty", path)
	}
	body := bytes.TrimSuffix(data, []byte("\n"))
	lastNL := bytes.LastIndexByte(body, '\n')
	lastLen := len(body) - (lastNL + 1)
	if lastLen == 0 {
		return fmt.Errorf("chaos: tear tail: %s has no final record", path)
	}
	cut := lastNL + 1 + (lastLen+1)/2
	return os.WriteFile(path, body[:cut], 0o666)
}

// FlipBit flips one plan-chosen bit inside the first record line of the
// file — a newline-terminated line, so never confusable with a torn
// tail — and returns the flipped byte offset. Every such flip is
// detectable: it either breaks the line's JSON structure or changes the
// checksummed bytes out from under the stored CRC32-C.
func FlipBit(path string, p Plan) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("chaos: flip bit: %w", err)
	}
	firstNL := bytes.IndexByte(data, '\n')
	if firstNL <= 0 {
		return 0, fmt.Errorf("chaos: flip bit: %s has no newline-terminated record", path)
	}
	off := p.Pick("flip-offset", firstNL)
	data[off] ^= 1 << p.Pick("flip-bit", 8)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return 0, fmt.Errorf("chaos: flip bit: %w", err)
	}
	return off, nil
}

// TruncateRecord cuts the 1-based line-th record roughly in half while
// keeping its terminating newline: mid-file damage that a torn-tail
// heuristic must never excuse.
func TruncateRecord(path string, line int) error {
	lines, err := splitRecords(path, line)
	if err != nil {
		return fmt.Errorf("chaos: truncate record: %w", err)
	}
	rec := bytes.TrimSuffix(lines[line-1], []byte("\n"))
	lines[line-1] = append(rec[:(len(rec)+1)/2:(len(rec)+1)/2], '\n')
	return os.WriteFile(path, bytes.Join(lines, nil), 0o666)
}

// DuplicateRecord inserts a byte-identical copy of the 1-based line-th
// record directly after it — benign damage: the store's last-wins
// semantics must absorb it without a report.
func DuplicateRecord(path string, line int) error {
	lines, err := splitRecords(path, line)
	if err != nil {
		return fmt.Errorf("chaos: duplicate record: %w", err)
	}
	dup := append([][]byte{}, lines[:line]...)
	dup = append(dup, lines[line-1])
	dup = append(dup, lines[line:]...)
	return os.WriteFile(path, bytes.Join(dup, nil), 0o666)
}

// splitRecords reads path into newline-inclusive lines and checks that
// the 1-based line index addresses a newline-terminated record.
func splitRecords(path string, line int) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	if line < 1 || line > len(lines) {
		return nil, fmt.Errorf("%s has %d records, no line %d", path, len(lines), line)
	}
	if !bytes.HasSuffix(lines[line-1], []byte("\n")) {
		return nil, fmt.Errorf("%s line %d is not newline-terminated", path, line)
	}
	return lines, nil
}
