package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// bodyRecorder is the target server for the RoundTripper tests: it
// records every request body it receives, in order.
type bodyRecorder struct {
	mu     sync.Mutex
	bodies [][]byte
}

func (br *bodyRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	data, _ := io.ReadAll(r.Body)
	br.mu.Lock()
	br.bodies = append(br.bodies, data)
	br.mu.Unlock()
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

func (br *bodyRecorder) got() [][]byte {
	br.mu.Lock()
	defer br.mu.Unlock()
	out := make([][]byte, len(br.bodies))
	copy(out, br.bodies)
	return out
}

func postBody(t *testing.T, f *NetFault, url string, body []byte) (*http.Response, error) {
	t.Helper()
	client := &http.Client{Transport: f, Timeout: 10 * time.Second}
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err == nil {
		defer func() { _ = resp.Body.Close() }()
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp, err
}

func TestNetFaultRefuseTimesThenHeals(t *testing.T) {
	rec := &bodyRecorder{}
	srv := httptest.NewServer(rec)
	defer srv.Close()

	f := &NetFault{Plan: Plan{Seed: 7, Name: "refuse"}, Mode: NetRefuse, Times: 2}
	for i := 0; i < 2; i++ {
		if _, err := postBody(t, f, srv.URL+"/v1/lease", []byte("hello")); err == nil {
			t.Fatalf("request %d: refused request succeeded", i)
		}
	}
	if _, err := postBody(t, f, srv.URL+"/v1/lease", []byte("hello")); err != nil {
		t.Fatalf("partition healed but request still fails: %v", err)
	}
	if got := f.Refused.Load(); got != 2 {
		t.Errorf("Refused = %d, want 2", got)
	}
	if got := f.PassedAfter.Load(); got != 1 {
		t.Errorf("PassedAfter = %d, want 1", got)
	}
	if got := len(rec.got()); got != 1 {
		t.Errorf("server saw %d requests, want 1 (both refused attempts delivered nothing)", got)
	}
}

func TestNetFaultResetDeliversDeterministicStrictPrefix(t *testing.T) {
	body := []byte(strings.Repeat("0123456789", 20))
	run := func() []byte {
		rec := &bodyRecorder{}
		srv := httptest.NewServer(rec)
		defer srv.Close()
		f := &NetFault{Plan: Plan{Seed: 41, Name: "reset"}, Mode: NetReset, Times: 1}
		if _, err := postBody(t, f, srv.URL+"/v1/complete", body); err == nil {
			t.Fatal("reset request reported success; the client must never learn whether the server acted")
		}
		if got := f.Resets.Load(); got != 1 {
			t.Fatalf("Resets = %d, want 1", got)
		}
		got := rec.got()
		if len(got) != 1 {
			t.Fatalf("server saw %d requests, want 1 (the torn prefix)", len(got))
		}
		return got[0]
	}
	first := run()
	if len(first) == 0 || len(first) >= len(body) {
		t.Fatalf("server received %d bytes of %d; want a non-empty strict prefix", len(first), len(body))
	}
	if !bytes.Equal(first, body[:len(first)]) {
		t.Fatal("delivered bytes are not a prefix of the request body")
	}
	if second := run(); !bytes.Equal(first, second) {
		t.Fatalf("same plan cut at %d then %d bytes; byte picks must replay exactly", len(first), len(second))
	}
}

func TestNetFaultBlackholeIsTimeout(t *testing.T) {
	rec := &bodyRecorder{}
	srv := httptest.NewServer(rec)
	defer srv.Close()

	f := &NetFault{Plan: Plan{Seed: 3, Name: "blackhole"}, Mode: NetBlackhole, Times: 1}
	_, err := postBody(t, f, srv.URL+"/v1/heartbeat", []byte("x"))
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackhole error %v is not a net.Error timeout", err)
	}
	if got := len(rec.got()); got != 0 {
		t.Errorf("server saw %d requests, want 0 (blackhole swallows the request whole)", got)
	}
	if got := f.Blackholed.Load(); got != 1 {
		t.Errorf("Blackholed = %d, want 1", got)
	}
}

func TestNetFaultTrickleDeliversEverythingSlowly(t *testing.T) {
	body := []byte(strings.Repeat("abcdefgh", 64))
	rec := &bodyRecorder{}
	srv := httptest.NewServer(rec)
	defer srv.Close()

	var pauses int
	var paused time.Duration
	f := &NetFault{
		Plan: Plan{Seed: 11, Name: "trickle"}, Mode: NetTrickle, Every: 1,
		Sleep: func(d time.Duration) { pauses++; paused += d }, TrickleDelay: time.Millisecond,
	}
	resp, err := postBody(t, f, srv.URL+"/v1/stream", body)
	if err != nil {
		t.Fatalf("trickle must cost latency and nothing else, got %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trickled request answered %d", resp.StatusCode)
	}
	got := rec.got()
	if len(got) != 1 || !bytes.Equal(got[0], body) {
		t.Fatalf("server received %d bytes, want the full %d-byte body intact", len(got[0]), len(body))
	}
	if pauses == 0 {
		t.Error("trickle never paused between slivers")
	}
	if paused != time.Duration(pauses)*time.Millisecond {
		t.Errorf("paused %v over %d pauses, want TrickleDelay each", paused, pauses)
	}
	if got := f.Trickled.Load(); got != 1 {
		t.Errorf("Trickled = %d, want 1", got)
	}
}

func TestNetFaultPathFilterAndEverySchedule(t *testing.T) {
	rec := &bodyRecorder{}
	srv := httptest.NewServer(rec)
	defer srv.Close()

	f := &NetFault{Plan: Plan{Seed: 5, Name: "every"}, Mode: NetRefuse, Every: 2, Path: "/v1/complete"}
	// Non-matching paths never count against the schedule.
	for i := 0; i < 4; i++ {
		if _, err := postBody(t, f, srv.URL+"/v1/lease", []byte("x")); err != nil {
			t.Fatalf("non-matching path attacked: %v", err)
		}
	}
	// Matching requests 1..4: the schedule refuses every 2nd.
	var errs int
	for i := 0; i < 4; i++ {
		if _, err := postBody(t, f, srv.URL+"/v1/complete", []byte("x")); err != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Errorf("Every=2 refused %d of 4 matching requests, want 2", errs)
	}
	if got := f.Refused.Load(); got != 2 {
		t.Errorf("Refused = %d, want 2", got)
	}
}

func TestCutListenerKillsConnectionsMidStream(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &CutListener{Listener: inner, Plan: Plan{Seed: 13, Name: "cut"}, Every: 1, MinBytes: 64, MaxBytes: 128}
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = io.Copy(io.Discard, r.Body)
			_, _ = w.Write(bytes.Repeat([]byte("y"), 4096))
		}),
		ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second, ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(cl) }()
	defer func() { _ = srv.Close() }()

	client := &http.Client{Timeout: 10 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	big := bytes.Repeat([]byte("z"), 64<<10)
	var failures int
	for i := 0; i < 3; i++ {
		resp, err := client.Post("http://"+inner.Addr().String()+"/v1/stream", "application/octet-stream", bytes.NewReader(big))
		if err != nil {
			failures++
			continue
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			failures++
		}
		_ = resp.Body.Close()
	}
	if failures != 3 {
		t.Errorf("%d of 3 connections survived a budget far below the payload", 3-failures)
	}
	if got := cl.Cut.Load(); got != 3 {
		t.Errorf("Cut = %d, want 3", got)
	}
}

func TestCutListenerEveryZeroCutsNone(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &CutListener{Listener: inner, Plan: Plan{Seed: 13, Name: "cut-none"}}
	rec := &bodyRecorder{}
	srv := &http.Server{
		Handler:     rec,
		ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second, ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(cl) }()
	defer func() { _ = srv.Close() }()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post("http://"+inner.Addr().String()+"/x", "application/octet-stream", bytes.NewReader(bytes.Repeat([]byte("z"), 64<<10)))
	if err != nil {
		t.Fatalf("Every=0 must pass every connection through: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if got := cl.Cut.Load(); got != 0 {
		t.Errorf("Cut = %d, want 0", got)
	}
}
