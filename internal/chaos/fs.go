package chaos

import (
	"fmt"
	"sync"

	"github.com/fpn/flagproxy/internal/checkpoint"
)

// FlakyFS wraps a checkpoint.FS and fails a configured number of
// CreateTemp and Rename calls — the two operations of the store's
// atomic-rename protocol a loaded filesystem actually refuses — so the
// store's bounded retry is exercised deterministically. Failures are
// consumed in call order; once the budgets are spent the FS behaves
// like its inner implementation.
type FlakyFS struct {
	checkpoint.FS
	mu          sync.Mutex
	failCreates int
	failRenames int
	creates     int
	renames     int
}

// NewFlakyFS wraps inner, failing the first failCreates CreateTemp and
// the first failRenames Rename calls with transient errors.
func NewFlakyFS(inner checkpoint.FS, failCreates, failRenames int) *FlakyFS {
	return &FlakyFS{FS: inner, failCreates: failCreates, failRenames: failRenames}
}

// CreateTemp counts the call and either injects a failure or delegates.
func (f *FlakyFS) CreateTemp(dir, pattern string) (checkpoint.File, error) {
	f.mu.Lock()
	f.creates++
	fail := f.failCreates > 0
	if fail {
		f.failCreates--
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("chaos: injected transient CreateTemp failure")
	}
	return f.FS.CreateTemp(dir, pattern)
}

// Rename counts the call and either injects a failure or delegates.
func (f *FlakyFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	fail := f.failRenames > 0
	if fail {
		f.failRenames--
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("chaos: injected transient Rename failure")
	}
	return f.FS.Rename(oldpath, newpath)
}

// Creates reports the total CreateTemp calls seen, injected failures
// included.
func (f *FlakyFS) Creates() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.creates
}

// Renames reports the total Rename calls seen, injected failures
// included.
func (f *FlakyFS) Renames() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.renames
}
