// Fault injection for the online decode service's syndrome streams.
// The service fault plan covers the four client-side failure modes the
// rtd server must survive with deterministic degradation accounting:
//
//   - torn request frames: the body is cut at a plan-chosen byte inside
//     a frame, so the server sees a framing violation mid-stream;
//   - mid-stream disconnects: the body ends cleanly at a frame boundary
//     before the trailer — a vanished client, not a corrupted one;
//   - hung clients: the body stalls after a plan-independent number of
//     frames and never finishes, tripping the server's read deadline;
//   - decoder stalls: reuse this package's Hung/Slow decoder wrappers
//     through experiment.Config.WrapDecoder, exactly as in batch sweeps.
//
// The helpers operate on pre-encoded frame lines ([][]byte from
// rtd.EncodeWindows), so this package stays decoupled from the wire
// schema: any framed JSONL stream can be attacked the same way.
package chaos

import (
	"bytes"
	"io"
	"sync"
)

// TornBody concatenates frames and truncates the result at a
// plan-chosen byte strictly inside frame tearAt — after its first byte,
// before its newline — so the cut is always a framing violation, never
// a clean boundary. tearAt is clamped into range.
func TornBody(p Plan, frames [][]byte, tearAt int) io.Reader {
	if tearAt < 0 {
		tearAt = 0
	}
	if tearAt >= len(frames) {
		tearAt = len(frames) - 1
	}
	keep := bytes.Join(frames[:tearAt], nil)
	tornFrame := frames[tearAt]
	cut := 1 + p.Pick("service-tear-offset", len(tornFrame)-1, uint64(tearAt))
	return bytes.NewReader(append(keep, tornFrame[:cut]...))
}

// DisconnectBody concatenates only the first keepFrames frames: the
// stream ends at a clean frame boundary with no trailer, the wire
// signature of a client that vanished mid-stream.
func DisconnectBody(frames [][]byte, keepFrames int) io.Reader {
	if keepFrames < 0 {
		keepFrames = 0
	}
	if keepFrames > len(frames) {
		keepFrames = len(frames)
	}
	return bytes.NewReader(bytes.Join(frames[:keepFrames], nil))
}

// HangingBody serves the first keepFrames frames, then blocks every
// Read until the transport closes the body (or Release is called) —
// the hung-client fault. After release it reports EOF, so the server
// that outwaited it sees a disconnect, not garbage.
type HangingBody struct {
	data    []byte
	off     int
	release chan struct{}
	once    sync.Once
}

// NewHangingBody builds the stalling request body.
func NewHangingBody(frames [][]byte, keepFrames int) *HangingBody {
	if keepFrames < 0 {
		keepFrames = 0
	}
	if keepFrames > len(frames) {
		keepFrames = len(frames)
	}
	return &HangingBody{data: bytes.Join(frames[:keepFrames], nil), release: make(chan struct{})}
}

// Read serves the kept prefix, then blocks until released.
func (h *HangingBody) Read(p []byte) (int, error) {
	if h.off < len(h.data) {
		n := copy(p, h.data[h.off:])
		h.off += n
		return n, nil
	}
	<-h.release
	return 0, io.EOF
}

// Close releases the stall; the HTTP transport calls it when the
// response completes, so a hung client unblocks itself once the server
// has given up on it.
func (h *HangingBody) Close() error {
	h.Release()
	return nil
}

// Release unblocks any pending and future Read.
func (h *HangingBody) Release() {
	h.once.Do(func() { close(h.release) })
}
