package chaos_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/chaos"
	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
)

// rotated3 is the chaos workload: the [[9,1,3]] rotated surface code,
// small enough that a full sweep runs in well under a second.
func rotated3(t testing.TB) *css.Code {
	t.Helper()
	l, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	return l.Code
}

var chaosArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

// baseConfig is one deterministic sweep point. Workers=1 keeps even the
// call-indexed fault injectors (hang-at-call-N, corrupt-every-Nth)
// bit-reproducible.
func baseConfig(code *css.Code) experiment.Config {
	return experiment.Config{
		Code: code, Arch: chaosArch, Basis: css.Z, P: 5e-3, Shots: 640, Seed: 11,
		Decoder: experiment.FlaggedMWPM, Workers: 1, ShardShots: 64,
	}
}

// sweepPoint mirrors cmd/ber's per-point pipeline: open the checkpoint
// store, resume from any committed prefix, checkpoint every commit, and
// mark the finished point done. This is the production resume path the
// fault plans attack.
func sweepPoint(dir string, cfg experiment.Config, opt checkpoint.Options) (*experiment.Result, error) {
	st, err := checkpoint.OpenOptions(dir, opt)
	if err != nil {
		return nil, err
	}
	key := cfg.Fingerprint()
	if rec, ok := st.Lookup(key); ok {
		if rec.Done {
			return experiment.Reconstruct(cfg, rec.Blocks, rec.Shots, rec.Errors, rec.EarlyStopped), nil
		}
		cfg.Resume = &experiment.Resume{Blocks: rec.Blocks, Shots: rec.Shots, Errors: rec.Errors}
	}
	cfg.OnCommit = func(pr experiment.Progress) {
		_ = st.Put(checkpoint.Record{Key: key, Blocks: pr.Blocks, Shots: pr.Shots, Errors: pr.Errors})
	}
	res, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	if !res.Interrupted {
		rec := checkpoint.Record{
			Key: key, Blocks: res.Blocks, Shots: res.Shots, Errors: res.LogicalErrors,
			EarlyStopped: res.EarlyStopped, Done: true,
		}
		if err := st.Put(rec); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// golden runs the fault-free sweep once per test binary.
func golden(t *testing.T, code *css.Code) *experiment.Result {
	t.Helper()
	res, err := sweepPoint(t.TempDir(), baseConfig(code), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogicalErrors == 0 {
		t.Fatal("fault-free run saw zero logical errors; bit-identity checks would be vacuous")
	}
	return res
}

func storeFile(dir string) string { return filepath.Join(dir, checkpoint.FileName) }

func TestPlanDeterminism(t *testing.T) {
	p := chaos.Plan{Seed: 42, Name: "bit-rot"}
	if p.Word("flip-offset") != p.Word("flip-offset") {
		t.Fatal("plan words are not stable across calls")
	}
	if p.Word("flip-offset") == p.Word("flip-bit") {
		t.Fatal("distinct labels produced the same decision word")
	}
	if p.Word("corrupt-detector", 0) == p.Word("corrupt-detector", 1) {
		t.Fatal("distinct call indices produced the same decision word")
	}
	q := chaos.Plan{Seed: 42, Name: "torn-tail"}
	if p.Word("flip-offset") == q.Word("flip-offset") {
		t.Fatal("distinct plan names produced the same decision word")
	}
	if (chaos.Plan{}).Pick("anything", 0) != 0 {
		t.Fatal("Pick(n<=0) must be 0")
	}
}

// Fault plan torn-tail: the final record loses its tail mid-byte. The
// store must drop the fragment, report it via TornTail, and the sweep
// must recompute to a bit-identical result.
func TestTornTailSweepRecomputesBitIdentical(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	dir := t.TempDir()
	if _, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := chaos.TearTail(storeFile(dir)); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("a torn tail must be tolerated, got %v", err)
	}
	if !st.TornTail() {
		t.Fatal("torn tail was not reported")
	}
	if st.Len() != 0 {
		t.Fatalf("the torn record leaked into the store: %d records", st.Len())
	}
	res, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net == nil {
		t.Fatal("sweep served a reconstructed result from a torn record instead of recomputing")
	}
	if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
		t.Fatalf("recomputed run diverged: got %d/%d, want %d/%d",
			res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
	}
}

// Fault plan bit-rot: one flipped bit mid-record. The store must refuse
// to load — on every attempt, not just the first — quarantine the file
// to a sidecar, and only recompute (bit-identically) after the operator
// removes the damaged file.
func TestBitRotQuarantinesUntilOperatorIntervenes(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	dir := t.TempDir()
	if _, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{}); err != nil {
		t.Fatal(err)
	}
	damaged, err := os.ReadFile(storeFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	off, err := chaos.FlipBit(storeFile(dir), chaos.Plan{Seed: 42, Name: "bit-rot"})
	if err != nil {
		t.Fatal(err)
	}
	damaged, err = os.ReadFile(storeFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		_, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{})
		var ce *checkpoint.CorruptRecordError
		if !errors.As(err, &ce) {
			t.Fatalf("attempt %d: bit rot at offset %d not refused: %v", attempt, off, err)
		}
		if ce.Line != 1 || ce.Sidecar == "" {
			t.Fatalf("attempt %d: quarantine report incomplete: %+v", attempt, ce)
		}
		sidecar, err := os.ReadFile(ce.Sidecar)
		if err != nil {
			t.Fatalf("attempt %d: sidecar missing: %v", attempt, err)
		}
		if string(sidecar) != string(damaged) {
			t.Fatalf("attempt %d: sidecar is not a byte-identical copy of the damaged file", attempt)
		}
	}
	if err := os.Remove(storeFile(dir)); err != nil {
		t.Fatal(err)
	}
	res, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
		t.Fatalf("post-remediation run diverged: got %d/%d, want %d/%d",
			res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
	}
}

// Fault plan truncated-record: a mid-file record cut short but still
// newline-terminated must be treated as corruption, never excused as a
// torn tail.
func TestTruncatedMidFileRecordRefused(t *testing.T) {
	code := rotated3(t)
	dir := t.TempDir()
	cfgA := baseConfig(code)
	cfgB := baseConfig(code)
	cfgB.P = 7e-3 // second record so line 1 is unambiguously mid-file
	for _, cfg := range []experiment.Config{cfgA, cfgB} {
		if _, err := sweepPoint(dir, cfg, checkpoint.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := chaos.TruncateRecord(storeFile(dir), 1); err != nil {
		t.Fatal(err)
	}
	_, err := checkpoint.Open(dir)
	var ce *checkpoint.CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("truncated mid-file record not refused: %v", err)
	}
	if ce.Line != 1 {
		t.Fatalf("corruption reported at line %d, want 1", ce.Line)
	}
}

// Fault plan duplicated-record: a byte-identical duplicate line is
// benign — last wins — and the finished point must still be served from
// the checkpoint without recomputation.
func TestDuplicatedRecordIsBenign(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	dir := t.TempDir()
	if _, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := chaos.DuplicateRecord(storeFile(dir), 1); err != nil {
		t.Fatal(err)
	}
	res, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net != nil {
		t.Fatal("finished point was recomputed instead of served from the store")
	}
	if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
		t.Fatalf("reconstructed point diverged: got %d/%d, want %d/%d",
			res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
	}
}

// Fault plan transient-write-errors: the first flushes fail at
// CreateTemp and Rename. The store's bounded retry must absorb them,
// the sweep must finish, and a clean reopen must see the done record.
func TestTransientWriteErrorsRetriedToCompletion(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	dir := t.TempDir()
	flaky := chaos.NewFlakyFS(checkpoint.OSFS(), 2, 1)
	opt := checkpoint.Options{FS: flaky, Sleep: func(time.Duration) {}}
	res, err := sweepPoint(dir, baseConfig(code), opt)
	if err != nil {
		t.Fatalf("bounded retry did not absorb transient write errors: %v", err)
	}
	if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
		t.Fatalf("flaky-FS run diverged: got %d/%d, want %d/%d",
			res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
	}
	if flaky.Creates() < 3 {
		t.Fatalf("injected create failures were never retried: %d CreateTemp calls", flaky.Creates())
	}
	again, err := sweepPoint(dir, baseConfig(code), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Net != nil || again.LogicalErrors != want.LogicalErrors {
		t.Fatalf("store left inconsistent after transient failures: %+v", again)
	}
}

// Fault plan hung-decoder: the primary decoder wedges on one call and
// never panics — only the decode deadline can catch it. The fallback
// (the same decoder kind, healthy) must rescue the shard within the
// deadline budget and land bit-identical to the fault-free run, with
// the degradation explicitly counted.
func TestHungDecoderRescuedWithinDeadlineBudget(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	release := make(chan struct{})
	defer close(release)
	cfg := baseConfig(code)
	cfg.DecodeTimeout = time.Second
	cfg.Fallback = []experiment.DecoderKind{experiment.FlaggedMWPM}
	primaryWrapped := false
	cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
		// First FlaggedMWPM construction is the primary; the lazy
		// fallback construction of the same kind stays healthy.
		if k == experiment.FlaggedMWPM && !primaryWrapped {
			primaryWrapped = true
			return &chaos.HungDecoder{Inner: dec, HangAt: 320, Release: release}
		}
		return dec
	}
	begin := time.Now()
	res, err := sweepPoint(t.TempDir(), cfg, checkpoint.Options{})
	elapsed := time.Since(begin)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardErrors) != 0 {
		t.Fatalf("hung shard was quarantined instead of rescued: %+v", res.ShardErrors)
	}
	if res.TimeoutBlocks != 1 || res.DegradedBlocks != 1 {
		t.Fatalf("degradation not counted: timeout=%d degraded=%d, want 1/1",
			res.TimeoutBlocks, res.DegradedBlocks)
	}
	if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
		t.Fatalf("rescued run diverged: got %d/%d, want %d/%d",
			res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
	}
	if budget := cfg.DecodeTimeout + 30*time.Second; elapsed > budget {
		t.Fatalf("hung-decoder sweep took %v, exceeding the deadline budget %v", elapsed, budget)
	}
}

// Fault plan slow-decoder: a decoder that crawls but finishes under a
// generous deadline must take the watchdog path without a single bit of
// drift and without counting any degradation.
func TestSlowDecoderUnderDeadlineNoDrift(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	cfg := baseConfig(code)
	cfg.DecodeTimeout = 30 * time.Second
	cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
		return &chaos.SlowDecoder{Inner: dec, Delay: 20 * time.Microsecond}
	}
	res, err := sweepPoint(t.TempDir(), cfg, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeoutBlocks != 0 || res.DegradedBlocks != 0 || len(res.ShardErrors) != 0 {
		t.Fatalf("slow decoder under a generous deadline degraded: %+v", res)
	}
	if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
		t.Fatalf("watchdog path changed the result: got %d/%d, want %d/%d",
			res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
	}
}

// Fault plan panicking-decoder: an unrecovered panic mid-sweep loses at
// most its shard to the (healthy, same-kind) fallback and the result
// stays bit-identical, with the rescue counted in FallbackBlocks.
func TestPanickingDecoderFallsBackBitIdentical(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	cfg := baseConfig(code)
	cfg.Fallback = []experiment.DecoderKind{experiment.FlaggedMWPM}
	primaryWrapped := false
	cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
		if k == experiment.FlaggedMWPM && !primaryWrapped {
			primaryWrapped = true
			return &chaos.PanicDecoder{Inner: dec, PanicAt: 128}
		}
		return dec
	}
	res, err := sweepPoint(t.TempDir(), cfg, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardErrors) != 0 {
		t.Fatalf("panicking shard was quarantined instead of rescued: %+v", res.ShardErrors)
	}
	if res.FallbackBlocks != 1 || res.TimeoutBlocks != 0 || res.DegradedBlocks != 0 {
		t.Fatalf("rescue accounting wrong: fallback=%d timeout=%d degraded=%d, want 1/0/0",
			res.FallbackBlocks, res.TimeoutBlocks, res.DegradedBlocks)
	}
	if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
		t.Fatalf("rescued run diverged: got %d/%d, want %d/%d",
			res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
	}
}

// Fault plan corrupted-syndrome: plan-derived detector-bit flips change
// what the decoder sees, so the result may legitimately differ from the
// fault-free run — but it must be reproducible: two sweeps under the
// same plan are bit-identical to each other.
func TestCorruptedSyndromeIsDeterministic(t *testing.T) {
	code := rotated3(t)
	run := func() (*experiment.Result, int64) {
		cd := &chaos.CorruptingDecoder{
			Plan: chaos.Plan{Seed: 42, Name: "corrupted-syndrome"}, Every: 7, Detectors: 16,
		}
		cfg := baseConfig(code)
		cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
			cd.Inner = dec
			return cd
		}
		res, err := sweepPoint(t.TempDir(), cfg, checkpoint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res, cd.Flips()
	}
	a, flipsA := run()
	b, flipsB := run()
	if flipsA == 0 {
		t.Fatal("corrupting decoder never fired")
	}
	if flipsA != flipsB {
		t.Fatalf("flip schedules diverged across identical plans: %d vs %d", flipsA, flipsB)
	}
	if a.Shots != b.Shots || a.LogicalErrors != b.LogicalErrors {
		t.Fatalf("identical fault plans produced different results: %d/%d vs %d/%d",
			a.LogicalErrors, a.Shots, b.LogicalErrors, b.Shots)
	}
}

// Fault plan memo-poison: the batch decode path's syndrome memo is
// corrupted through the decoder.Batch MemoFault seam. A poisoned memo
// must (a) actually change the sweep's outcome — proving the
// batch-vs-scalar differential tests have teeth against exactly this
// failure — (b) replay bit-identically under the same plan, and (c) be
// a strict no-op when the fault is disabled.
func TestMemoPoisonFaultPlan(t *testing.T) {
	code := rotated3(t)
	want := golden(t, code)
	run := func(every int) (*experiment.Result, int64) {
		mp := &chaos.MemoPoisoner{Plan: chaos.Plan{Seed: 42, Name: "memo-poison"}, Every: every}
		cfg := baseConfig(code)
		cfg.WrapDecoder = func(_ experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
			return mp.Wrap(dec)
		}
		res, err := experiment.RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, mp.Flips()
	}
	off, offFlips := run(0)
	if offFlips != 0 {
		t.Fatalf("disabled poisoner flipped %d entries", offFlips)
	}
	if off.Shots != want.Shots || off.LogicalErrors != want.LogicalErrors {
		t.Fatalf("disabled poisoner disturbed the run: got %d/%d, want %d/%d",
			off.LogicalErrors, off.Shots, want.LogicalErrors, want.Shots)
	}
	a, flipsA := run(1)
	if flipsA == 0 {
		t.Fatal("memo poisoner never fired; the batch path is not engaged")
	}
	if a.LogicalErrors == want.LogicalErrors {
		t.Fatalf("poisoned memo produced the fault-free error count %d; the differential harness would miss this corruption",
			a.LogicalErrors)
	}
	b, flipsB := run(1)
	if a.Shots != b.Shots || a.LogicalErrors != b.LogicalErrors || flipsA != flipsB {
		t.Fatalf("identical memo-poison plans diverged: %d/%d (%d flips) vs %d/%d (%d flips)",
			a.LogicalErrors, a.Shots, flipsA, b.LogicalErrors, b.Shots, flipsB)
	}
}
