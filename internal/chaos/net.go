// Connection-level fault injection: the network hazards a partition
// throws at the distributed layers, as deterministic plan-driven
// stages. Where Fabric attacks one endpoint's payloads, NetFault
// attacks the connection itself, in the four shapes the fabric and the
// rtd service must survive:
//
//   - refuse: the connection attempt fails outright — nothing is
//     delivered, the classic dead-host signature;
//   - reset: the connection dies mid-body — a plan-chosen strict prefix
//     of the request reaches the server (which must reject the torn
//     stream), and the client sees a transport error either way, so it
//     can never tell whether the server acted;
//   - blackhole: the connection is accepted and then nothing ever
//     answers — the request is swallowed whole and the caller's own
//     timeout is what surfaces the failure;
//   - trickle: everything is delivered, one plan-sized sliver at a
//     time — pure slowness, which must cost latency and nothing else.
//
// Every byte-pick derives from the Plan through the same splitmix64
// mixer as the shard engine, so a failing chaos run replays exactly.
// NetFault plugs into seams production code already exposes
// (fabric.WorkerOptions.Client, rtd.Client.HTTP); CutListener wraps a
// listener for the server side of the same faults, and the service
// body helpers (TornBody, DisconnectBody, HangingBody) remain the
// request-body seam.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// NetFault modes.
const (
	NetRefuse    = "refuse"    // fail the attempt; nothing is delivered
	NetReset     = "reset"     // deliver a strict prefix, then surface an error
	NetBlackhole = "blackhole" // swallow the request; answer with a timeout
	NetTrickle   = "trickle"   // deliver everything, in plan-sized slivers
)

// NetFault is a deterministic connection-fault http.RoundTripper.
// Matching requests are counted; attacked ones fault per Mode, the rest
// pass through untouched. Safe for concurrent use.
type NetFault struct {
	Plan  Plan
	Inner http.RoundTripper // nil means http.DefaultTransport
	Mode  string            // NetRefuse, NetReset, NetBlackhole or NetTrickle

	// Path, when non-empty, restricts the attack to requests for that
	// URL path; everything else always passes through.
	Path string
	// Times, when > 0, attacks the first Times matching requests and
	// then stands down — the "partition heals" schedule resume loops
	// need. Checked before Every.
	Times int
	// Every, when > 0 (and Times is 0), attacks every Every-th matching
	// request — the steady-loss schedule identity suites need.
	Every int
	// Sleep paces trickled slivers; nil means no pause (the sliver
	// boundaries alone exercise partial-read paths). Tests inject a
	// counting stub; nothing here reads the wall clock.
	Sleep func(time.Duration)
	// TrickleDelay is the per-sliver pause handed to Sleep.
	TrickleDelay time.Duration

	calls       atomic.Int64
	Refused     atomic.Int64 // attempts failed outright
	Resets      atomic.Int64 // bodies cut mid-stream
	Blackholed  atomic.Int64 // requests swallowed whole
	Trickled    atomic.Int64 // requests delivered in slivers
	PassedAfter atomic.Int64 // requests passed through once Times expired
}

// netTimeoutError is the blackhole verdict: a net.Error with
// Timeout() == true, exactly what a client deadline against a silent
// peer produces — but synchronously, so chaos runs never wait for real
// timers.
type netTimeoutError struct{ msg string }

func (e *netTimeoutError) Error() string   { return e.msg }
func (e *netTimeoutError) Timeout() bool   { return true }
func (e *netTimeoutError) Temporary() bool { return true }

// attack reports whether matching request n (1-based) is attacked.
func (f *NetFault) attack(n int64) bool {
	if f.Times > 0 {
		return n <= int64(f.Times)
	}
	return f.Every > 0 && n%int64(f.Every) == 0
}

// RoundTrip implements http.RoundTripper.
func (f *NetFault) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := f.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if f.Path != "" && req.URL.Path != f.Path {
		return inner.RoundTrip(req)
	}
	n := f.calls.Add(1)
	if !f.attack(n) {
		if f.Times > 0 && n > int64(f.Times) {
			f.PassedAfter.Add(1)
		}
		return inner.RoundTrip(req)
	}
	// The body is owned by the transport once RoundTrip is called; read
	// it up front so every mode can replay or cut it deterministically.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		_ = req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	idx := uint64(n - 1)
	send := func(payload []byte) (*http.Response, error) {
		r2 := req.Clone(req.Context())
		if payload != nil {
			r2.Body = io.NopCloser(bytes.NewReader(payload))
			r2.ContentLength = int64(len(payload))
		}
		return inner.RoundTrip(r2)
	}
	discard := func(resp *http.Response, err error) {
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}
	switch f.Mode {
	case NetRefuse:
		f.Refused.Add(1)
		return nil, fmt.Errorf("chaos: connection refused by plan %q (request %d)", f.Plan.Name, n)
	case NetReset:
		f.Resets.Add(1)
		if len(body) > 1 {
			// A strict prefix reaches the server — it must detect the torn
			// stream — and the client still sees only a dead connection.
			cut := 1 + f.Plan.Pick("net-reset-offset", len(body)-1, idx)
			discard(send(body[:cut]))
		}
		return nil, fmt.Errorf("chaos: connection reset mid-body by plan %q (request %d)", f.Plan.Name, n)
	case NetBlackhole:
		f.Blackholed.Add(1)
		return nil, &netTimeoutError{msg: fmt.Sprintf("chaos: request %d blackholed by plan %q: timeout awaiting response", n, f.Plan.Name)}
	case NetTrickle:
		f.Trickled.Add(1)
		sliver := 1 + f.Plan.Pick("net-trickle-sliver", 16, idx)
		r2 := req.Clone(req.Context())
		if body != nil {
			r2.Body = io.NopCloser(&trickleReader{data: body, sliver: sliver, sleep: f.Sleep, delay: f.TrickleDelay})
			r2.ContentLength = int64(len(body))
		}
		return inner.RoundTrip(r2)
	default:
		return send(body)
	}
}

// trickleReader serves its payload sliver bytes at a time, pausing
// between slivers when a Sleep is configured.
type trickleReader struct {
	data   []byte
	off    int
	sliver int
	sleep  func(time.Duration)
	delay  time.Duration
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, io.EOF
	}
	if t.off > 0 && t.sleep != nil {
		t.sleep(t.delay)
	}
	n := t.sliver
	if n > len(p) {
		n = len(p)
	}
	if rem := len(t.data) - t.off; n > rem {
		n = rem
	}
	copy(p, t.data[t.off:t.off+n])
	t.off += n
	return n, nil
}

// CutListener wraps a net.Listener and kills every Every-th accepted
// connection after a plan-chosen byte budget (reads + writes combined):
// the server-side mid-stream cut — a response dying under the client,
// a request dying under the server — that resume protocols must absorb.
// The cut lands at a deterministic byte offset; which request trips it
// depends only on connection order.
type CutListener struct {
	net.Listener
	Plan  Plan
	Every int // cut every Every-th accepted connection; <= 0 cuts none
	// MinBytes/MaxBytes bound the byte budget drawn per cut connection.
	// Zero values default to [256, 4096).
	MinBytes, MaxBytes int

	accepted atomic.Int64
	Cut      atomic.Int64 // connections killed mid-stream
}

// Accept implements net.Listener.
func (l *CutListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	n := l.accepted.Add(1)
	if l.Every <= 0 || n%int64(l.Every) != 0 {
		return c, nil
	}
	lo, hi := l.MinBytes, l.MaxBytes
	if lo <= 0 {
		lo = 256
	}
	if hi <= lo {
		hi = lo + 3840
	}
	budget := lo + l.Plan.Pick("net-cut-budget", hi-lo, uint64(n-1))
	cc := &cutConn{Conn: c, cut: &l.Cut}
	cc.budget.Store(int64(budget))
	return cc, nil
}

// cutConn closes itself once its byte budget is spent.
type cutConn struct {
	net.Conn
	budget atomic.Int64
	cut    *atomic.Int64
	dead   atomic.Bool
}

func (c *cutConn) spend(n int) error {
	if c.budget.Add(int64(-n)) <= 0 && c.dead.CompareAndSwap(false, true) {
		c.cut.Add(1)
		_ = c.Conn.Close()
		return io.ErrClosedPipe
	}
	return nil
}

func (c *cutConn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, io.ErrClosedPipe
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		if cerr := c.spend(n); cerr != nil && err == nil {
			err = cerr
		}
	}
	return n, err
}

func (c *cutConn) Write(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, io.ErrClosedPipe
	}
	n, err := c.Conn.Write(p)
	if n > 0 {
		if cerr := c.spend(n); cerr != nil && err == nil {
			err = cerr
		}
	}
	return n, err
}
