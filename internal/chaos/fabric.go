// Fault injection for the distributed sweep fabric's transport. Fabric
// wraps an http.RoundTripper and attacks exactly the traffic whose loss
// the protocol must survive bit-identically: shard completion streams.
// Three attack modes, all deterministic from the Plan:
//
//   - torn streams: the completion body is truncated at a plan-chosen
//     byte, so the coordinator sees a CRC/trailer violation and must
//     reject the merge wholesale (the worker then resends);
//   - dropped responses: the completion is delivered but its response
//     never reaches the worker, so the worker retries and the
//     coordinator must treat the duplicate as idempotent;
//   - duplicated completions: the same stream is delivered twice
//     back-to-back — the double-completion case — which the coordinator
//     must answer by content, not by lease state.
//
// Like the rest of this package, Fabric injects faults only through a
// seam production code already exposes (fabric.WorkerOptions.Client),
// so chaos runs exercise the real worker loop and the real handlers.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// Fabric is a deterministic fault-injecting http.RoundTripper for
// fabric workers. Completion requests (POST /v1/complete) are counted,
// and the Nth request is attacked per the Every knobs; all other
// traffic passes through untouched. Safe for concurrent use.
type Fabric struct {
	Plan  Plan
	Inner http.RoundTripper // nil means http.DefaultTransport

	// TearEvery, when > 0, truncates every TearEvery-th completion body
	// at a plan-chosen byte offset before it reaches the coordinator.
	TearEvery int
	// DropEvery, when > 0, delivers every DropEvery-th completion but
	// discards the response, surfacing a transport error to the worker.
	DropEvery int
	// DupEvery, when > 0, sends every DupEvery-th completion twice
	// back-to-back and returns the second response.
	DupEvery int

	calls   atomic.Int64
	Torn    atomic.Int64 // completions truncated
	Dropped atomic.Int64 // completion responses discarded
	Duped   atomic.Int64 // completions sent twice
}

// RoundTrip implements http.RoundTripper.
func (f *Fabric) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := f.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if req.URL.Path != "/v1/complete" || req.Body == nil {
		return inner.RoundTrip(req)
	}
	body, err := io.ReadAll(req.Body)
	_ = req.Body.Close() // fully consumed (or already failed) either way
	if err != nil {
		return nil, err
	}
	n := f.calls.Add(1)
	idx := uint64(n - 1)
	resend := func(payload []byte) (*http.Response, error) {
		r2 := req.Clone(req.Context())
		r2.Body = io.NopCloser(bytes.NewReader(payload))
		r2.ContentLength = int64(len(payload))
		return inner.RoundTrip(r2)
	}
	if f.TearEvery > 0 && n%int64(f.TearEvery) == 0 && len(body) > 1 {
		f.Torn.Add(1)
		cut := 1 + f.Plan.Pick("fabric-tear-offset", len(body)-1, idx)
		return resend(body[:cut])
	}
	if f.DropEvery > 0 && n%int64(f.DropEvery) == 0 {
		f.Dropped.Add(1)
		resp, err := resend(body)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		return nil, fmt.Errorf("chaos: completion response %d dropped by plan %q", n, f.Plan.Name)
	}
	if f.DupEvery > 0 && n%int64(f.DupEvery) == 0 {
		f.Duped.Add(1)
		if resp, err := resend(body); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}
	return resend(body)
}
