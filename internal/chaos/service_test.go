// Service fault plans: one rtd server takes a healthy stream, then a
// torn stream, a mid-stream disconnect and a hung client, and the final
// counter snapshot must match a golden computed from the plan — every
// shed, torn, hung and dropped round explicitly accounted, nothing
// silent. Committed corrections under faults must stay bit-identical to
// the healthy stream's for the same windows.
package chaos_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/chaos"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/rtd"
	"github.com/fpn/flagproxy/internal/sim"
)

// serviceStack builds the online decode stack for the chaos workload.
func serviceStack(t *testing.T) *experiment.Online {
	t.Helper()
	code := rotated3(t)
	pl, err := experiment.NewPipeline(code, chaosArch)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(code)
	o, err := pl.NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func serviceWindows(t *testing.T, o *experiment.Online, n int) [][][]int {
	t.Helper()
	c := o.Circuit()
	smp := sim.NewBlockSampler(c, (n+63)/64)
	if err := smp.Validate(0, n); err != nil {
		t.Fatal(err)
	}
	res := smp.Run(0, n, o.Config().Seed)
	return rtd.BuildWindows(c, res, 0, n)
}

func TestServiceFaultPlanGoldenCounters(t *testing.T) {
	o := serviceStack(t)
	s, err := rtd.NewServer(rtd.Options{Online: o, ReadTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	rpw := s.Stats().RoundsPerWindow
	fp := o.Config().Fingerprint()
	const shots = 8
	wins := serviceWindows(t, o, shots)
	frames, err := rtd.EncodeWindows(fp, wins)
	if err != nil {
		t.Fatal(err)
	}
	cl := &rtd.Client{URL: ts.URL}
	ctx := context.Background()

	// Leg 1: healthy stream — the reference corrections.
	healthy, err := cl.Stream(ctx, fp, wins)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Fatal != "" || len(healthy.Results) != shots {
		t.Fatalf("healthy leg: fatal=%q results=%d", healthy.Fatal, len(healthy.Results))
	}

	// Leg 2: torn stream — cut strictly inside round 1 of window 2. The
	// two complete windows decode; the partial window's round is dropped.
	plan := chaos.Plan{Seed: 42, Name: "service-faults"}
	tearAt := 1 + 2*rpw + 1 // header, two full windows, one round of window 2
	torn, err := cl.StreamBody(ctx, chaos.TornBody(plan, frames, tearAt))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(torn.Fatal, "torn stream") {
		t.Fatalf("torn leg: fatal = %q, want torn verdict", torn.Fatal)
	}
	if len(torn.Results) != 2 {
		t.Fatalf("torn leg: %d results, want 2 complete windows", len(torn.Results))
	}

	// Leg 3: mid-stream disconnect — clean frame boundary after 3 full
	// windows, no trailer. The vanished client is a torn stream too.
	disc, err := cl.StreamBody(ctx, chaos.DisconnectBody(frames, 1+3*rpw))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(disc.Fatal, "torn stream") {
		t.Fatalf("disconnect leg: fatal = %q, want torn verdict", disc.Fatal)
	}
	if len(disc.Results) != 3 {
		t.Fatalf("disconnect leg: %d results, want 3 complete windows", len(disc.Results))
	}

	// Leg 4: hung client — one full window then silence past the read
	// deadline. The completed window still commits.
	hang := chaos.NewHangingBody(frames, 1+rpw)
	defer hang.Release()
	hung, err := cl.StreamBody(ctx, hang)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hung.Fatal, "hung client") {
		t.Fatalf("hung leg: fatal = %q, want hung verdict", hung.Fatal)
	}
	if len(hung.Results) != 1 {
		t.Fatalf("hung leg: %d results, want 1", len(hung.Results))
	}

	// Bit-identity under faults: every correction committed on a faulted
	// stream matches the healthy stream's for the same window.
	for leg, out := range map[string]*rtd.StreamOutcome{"torn": torn, "disconnect": disc, "hung": hung} {
		for i, r := range out.Results {
			h := healthy.Results[i]
			if r.Status != rtd.StatusOK || len(r.Flips) != len(h.Flips) {
				t.Fatalf("%s leg window %d: %+v != healthy %+v", leg, i, r, h)
			}
			for j := range r.Flips {
				if r.Flips[j] != h.Flips[j] {
					t.Fatalf("%s leg window %d: flips %v != healthy %v", leg, i, r.Flips, h.Flips)
				}
			}
		}
	}

	// Golden snapshot: every round of every leg explicitly accounted.
	st := s.Stats()
	committedWindows := int64(shots + 2 + 3 + 1)
	golden := rtd.Stats{
		Decoder:         o.Config().Decoder.String(),
		Fingerprint:     fp,
		RoundsPerWindow: rpw,
		Streams:         4,
		StreamsTorn:     2, // torn + disconnect
		HungClients:     1,
		RoundsReceived:  int64(shots*rpw) + int64(2*rpw+1) + int64(3*rpw) + int64(rpw),
		CommittedRounds: committedWindows * int64(rpw),
		DroppedRounds:   1, // the torn leg's partial round
		Windows:         committedWindows,
	}
	got := st
	got.P50Ns, got.P99Ns, got.P999Ns = 0, 0, 0 // latency is the one non-deterministic axis
	if got != golden {
		t.Fatalf("counter snapshot:\n got  %+v\nwant %+v", got, golden)
	}
}

// Decoder stalls are the fourth service fault: the primary wedges, the
// deadline trips, and the fallback chain commits — counted as timeout +
// degraded rounds, with the correction bit-identical to the fallback's.
func TestServiceDecoderStallPlanDegrades(t *testing.T) {
	code := rotated3(t)
	pl, err := experiment.NewPipeline(code, chaosArch)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(code)
	cfg.Fallback = []experiment.DecoderKind{experiment.PlainMWPM}
	hung := &chaos.HungDecoder{HangAt: 0, Release: make(chan struct{})}
	defer close(hung.Release)
	cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
		if k == experiment.FlaggedMWPM {
			hung.Inner = dec
			return hung
		}
		return dec
	}
	o, err := pl.NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rtd.NewServer(rtd.Options{Online: o, Workers: 1, DecodeTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	wins := serviceWindows(t, o, 2)
	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.Stream(context.Background(), o.Config().Fingerprint(), wins)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(out.Results))
	}
	// Window 0 hits the wedge and degrades; window 1 decodes on the
	// reacquired primary handle (HangAt blocks only call 0).
	if out.Results[0].Status != rtd.StatusDegraded || out.Results[0].Decoder != experiment.PlainMWPM.String() {
		t.Fatalf("window 0: %+v, want degraded via plain-mwpm", out.Results[0])
	}
	if out.Results[1].Status != rtd.StatusOK {
		t.Fatalf("window 1: %+v, want ok on the reacquired primary", out.Results[1])
	}
	st := s.Stats()
	rpw := int64(st.RoundsPerWindow)
	if st.TimeoutRounds != rpw || st.DegradedRounds != rpw || st.CommittedRounds != 2*rpw || st.FailedRounds != 0 {
		t.Fatalf("stall accounting: %+v", st)
	}
}
