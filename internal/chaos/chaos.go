// Package chaos is a deterministic fault-injection harness for the
// sweep engine's three failure boundaries: checkpoint I/O (a
// checkpoint.FS implementation with transient write failures, plus
// on-disk corruptors for torn tails, bit rot, truncated and duplicated
// records), decoder calls (wrappers that hang, crawl, panic or corrupt
// syndrome bits), and the sampler/decode pipeline they feed. Every
// decision a fault plan makes — which byte to rot, which call to hang —
// is derived from (Seed, Name, label) through the same splitmix64 mixer
// the engine uses for shard RNG, so a failing chaos run replays exactly
// from its seed; nothing here ever consults wall-clock time or global
// RNG state for a decision.
//
// The package injects faults only through seams the production code
// already exposes — checkpoint.Options.FS and
// experiment.Config.WrapDecoder — so the chaos suite exercises the very
// binaries a sweep runs, not instrumented copies.
package chaos

import "github.com/fpn/flagproxy/internal/seedmix"

// Plan names one deterministic fault scenario. The zero Name is valid;
// distinct names yield statistically independent decision streams from
// the same seed, exactly like the engine's per-block RNG derivation.
type Plan struct {
	Seed int64
	Name string
}

// Word derives the plan's 64-bit decision word for label, with optional
// extra indices (e.g. a call number) folded in.
func (p Plan) Word(label string, idx ...uint64) uint64 {
	words := make([]uint64, 0, len(idx)+2)
	words = append(words, seedmix.String(p.Name), seedmix.String(label))
	words = append(words, idx...)
	return uint64(seedmix.Derive(p.Seed, words...))
}

// Pick returns a deterministic value in [0, n); n <= 0 yields 0.
func (p Plan) Pick(label string, n int, idx ...uint64) int {
	if n <= 0 {
		return 0
	}
	return int(p.Word(label, idx...) % uint64(n))
}
