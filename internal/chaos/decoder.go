package chaos

import (
	"sync/atomic"
	"time"

	"github.com/fpn/flagproxy/internal/decoder"
)

// Decoder mirrors experiment.Decoder structurally, so the wrappers here
// plug straight into experiment.Config.WrapDecoder without this package
// importing the engine.
type Decoder interface {
	Decode(func(int) bool) ([]bool, error)
}

// SlowDecoder sleeps before every decode call: a decoder that crawls
// but finishes. Under a generous Config.DecodeTimeout it must change
// nothing; under a tight one it trips the deadline path.
type SlowDecoder struct {
	Inner Decoder
	Delay time.Duration
}

// Decode sleeps Delay, then delegates.
func (d *SlowDecoder) Decode(bit func(int) bool) ([]bool, error) {
	time.Sleep(d.Delay)
	return d.Inner.Decode(bit)
}

// HungDecoder blocks exactly one decode call (0-based index HangAt)
// until Release is closed: a decoder that wedges without panicking, the
// failure mode only Config.DecodeTimeout can catch. Tests must close
// Release before returning so the abandoned attempt goroutine exits.
type HungDecoder struct {
	Inner   Decoder
	HangAt  int64
	Release chan struct{}
	calls   atomic.Int64
}

// Decode blocks on call HangAt until Release is closed, then delegates.
func (d *HungDecoder) Decode(bit func(int) bool) ([]bool, error) {
	if d.calls.Add(1)-1 == d.HangAt {
		<-d.Release
	}
	return d.Inner.Decode(bit)
}

// Calls reports how many decode calls the wrapper has seen.
func (d *HungDecoder) Calls() int64 { return d.calls.Load() }

// PanicDecoder panics on exactly one decode call (0-based index
// PanicAt), imitating an unrecovered invariant failure deep in a
// third-party decoder — the engine must quarantine or fall back, never
// die.
type PanicDecoder struct {
	Inner   Decoder
	PanicAt int64
	calls   atomic.Int64
}

// Decode panics on call PanicAt, otherwise delegates.
func (d *PanicDecoder) Decode(bit func(int) bool) ([]bool, error) {
	if d.calls.Add(1)-1 == d.PanicAt {
		panic("chaos: injected decoder panic")
	}
	return d.Inner.Decode(bit)
}

// CorruptingDecoder flips one plan-chosen detector bit on every Every-th
// decode call (calls 0, Every, 2*Every, …) before delegating, modeling
// corruption between sampler and decoder. The flipped detector is
// derived from (Plan, call index), so a run replays bit-identically
// under the same plan — provided the engine runs with Workers=1, since
// the call→shot mapping depends on worker interleaving otherwise.
type CorruptingDecoder struct {
	Inner     Decoder
	Plan      Plan
	Every     int64 // corrupt calls where call%Every == 0; <= 0 disables
	Detectors int   // detector-index range to corrupt within
	calls     atomic.Int64
	flips     atomic.Int64
}

// Decode corrupts the syndrome view on scheduled calls, then delegates.
func (d *CorruptingDecoder) Decode(bit func(int) bool) ([]bool, error) {
	n := d.calls.Add(1) - 1
	if d.Every > 0 && d.Detectors > 0 && n%d.Every == 0 {
		d.flips.Add(1)
		flip := d.Plan.Pick("corrupt-detector", d.Detectors, uint64(n))
		inner := bit
		bit = func(i int) bool {
			if i == flip {
				return !inner(i)
			}
			return inner(i)
		}
	}
	return d.Inner.Decode(bit)
}

// Flips reports how many decode calls were served a corrupted syndrome.
func (d *CorruptingDecoder) Flips() int64 { return d.flips.Load() }

// MemoPoisoner corrupts the batch decode path's syndrome memo through
// the decoder.Batch MemoFault seam: one in Every memo stores — chosen
// deterministically by the entry's key hash, so every store of the same
// syndrome is poisoned identically and the run's outputs stay
// bit-identical for any worker count — has observable 0 of its cached
// prediction flipped. A poisoned memo silently mis-predicts repeated
// syndromes, the exact failure the batch-vs-scalar differential tests
// exist to catch; the chaos suite uses this to prove they do.
type MemoPoisoner struct {
	Plan  Plan
	Every int // poison stores where the key-hash draw lands on 0; <= 0 disables
	flips atomic.Int64
}

// Wrap returns dec with the poisoning fault installed. Decoders without
// a batch path pass through untouched (their shards decode scalar and
// never consult a memo).
func (m *MemoPoisoner) Wrap(dec Decoder) Decoder {
	b, ok := dec.(*decoder.Batch)
	if !ok {
		return dec
	}
	pb := decoder.NewBatch(b.Inner())
	pb.MemoFault = func(keyHash uint64, pred []uint64) {
		if m.Every > 0 && m.Plan.Pick("poison-memo", m.Every, keyHash) == 0 {
			m.flips.Add(1)
			pred[0] ^= 1 // observable 0 always exists
		}
	}
	return pb
}

// Flips reports how many memo stores were poisoned.
func (m *MemoPoisoner) Flips() int64 { return m.flips.Load() }
