#!/usr/bin/env bash
# Online decode service integration check: boot decoded, prove committed
# corrections are bit-identical to the offline decode stack, replay the
# chaos client plans (torn stream, mid-stream disconnect, hung client)
# against it and pin the degradation counters, then SIGTERM it with a
# client mid-stream and require a clean drain — every fully received
# window flushed, the stream closed with a drained trailer, exit 0 —
# plus a CRC-framed latency log that reads back clean.
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/decoded" ./cmd/decoded

# Shared circuit flags: client and server must agree (enforced by the
# configuration fingerprint on every stream).
args=(-d 3 -p 5e-3 -seed 11)

# wait_for_addr SERVER_STDERR: echo the announced listen address.
wait_for_addr() {
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^decoded: serving on \([^ ]*\).*/\1/p' "$1" | head -n1)"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    echo "$addr"
}

# statz URL FIELD: extract one integer counter from /statz.
statz() {
    curl -s "$1/statz" | sed -n "s/.*\"$2\":\([0-9-]*\).*/\1/p"
}

echo "== boot"
"$work/decoded" "${args[@]}" -listen 127.0.0.1:0 -latlog "$work/latency.jsonl" \
    2>"$work/server.err" &
spid=$!
addr="$(wait_for_addr "$work/server.err")"
if [ -z "$addr" ]; then
    echo "FAIL: decoded never announced its address" >&2
    cat "$work/server.err" >&2
    exit 1
fi
url="http://$addr"
echo "   serving on $addr"
if ! curl -s "$url/healthz" | grep -q ok; then
    echo "FAIL: healthz not ok" >&2
    exit 1
fi

echo "== healthy stream, bit-identity vs offline decode"
"$work/decoded" "${args[@]}" -connect "$url" -shots 64 -verify >"$work/healthy.txt"
if ! grep -q "verify: 64/64 corrections bit-identical to offline decode" "$work/healthy.txt"; then
    echo "FAIL: bit-identity verification failed:" >&2
    cat "$work/healthy.txt" >&2
    exit 1
fi
echo "OK: 64/64 corrections bit-identical to offline decode"

echo "== chaos clients: torn, disconnect, hang"
"$work/decoded" "${args[@]}" -connect "$url" -shots 8 -chaos torn >"$work/torn.txt"
grep -q "torn stream" "$work/torn.txt" || { echo "FAIL: no torn verdict"; cat "$work/torn.txt"; exit 1; }
"$work/decoded" "${args[@]}" -connect "$url" -shots 8 -chaos disconnect >"$work/disc.txt"
grep -q "torn stream" "$work/disc.txt" || { echo "FAIL: no disconnect verdict"; cat "$work/disc.txt"; exit 1; }
# The hang client needs the server's read deadline to cut it off; the
# suite keeps the default 30s for production realism, so this leg runs
# it against a second server with a short -read-timeout.
"$work/decoded" "${args[@]}" -listen 127.0.0.1:0 -read-timeout 1s 2>"$work/server2.err" &
spid2=$!
addr2="$(wait_for_addr "$work/server2.err")"
[ -n "$addr2" ] || { echo "FAIL: second decoded never announced"; exit 1; }
"$work/decoded" "${args[@]}" -connect "http://$addr2" -shots 4 -chaos hang >"$work/hang.txt"
grep -q "hung client" "$work/hang.txt" || { echo "FAIL: no hung verdict"; cat "$work/hang.txt"; exit 1; }
grep -q "1 results ok=1" "$work/hang.txt" || { echo "FAIL: hung client's completed window not flushed"; cat "$work/hang.txt"; exit 1; }
kill -TERM "$spid2"; wait "$spid2"

# Golden counters on the first server: 3 streams (healthy + torn +
# disconnect), 2 torn, and with rounds_per_window=4 at d=3:
# healthy 64 windows + torn 7 + disconnect 7 = 78 committed windows,
# torn leg drops 1 round of its cut window.
for check in "streams:3" "streams_torn:2" "hung_clients:0" "windows:78" \
    "committed_rounds:312" "dropped_rounds:1" "shed_rounds:0" \
    "timeout_rounds:0" "failed_rounds:0" "decode_errors:0"; do
    field="${check%%:*}"; want="${check##*:}"
    got="$(statz "$url" "$field")"
    if [ "$got" != "$want" ]; then
        echo "FAIL: /statz $field = $got, want $want" >&2
        curl -s "$url/statz" >&2; echo >&2
        exit 1
    fi
done
echo "OK: degradation counters match the golden plan"

echo "== SIGTERM drains with a client mid-stream"
# A hang client parks mid-stream (window 0 sent in full, then silence);
# the drain must abort its read, flush window 0, and close the stream
# with a drained trailer — the client sees exactly one ok result.
"$work/decoded" "${args[@]}" -connect "$url" -shots 4 -chaos hang >"$work/drain-client.txt" &
hpid=$!
sleep 1
kill -TERM "$spid"
deadline=$((SECONDS + 20))
while kill -0 "$spid" 2>/dev/null; do
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "FAIL: drain did not finish within 20s" >&2
        kill -9 "$spid" 2>/dev/null
        exit 1
    fi
    sleep 0.1
done
set +e
wait "$spid"; sstatus=$?
wait "$hpid"; hstatus=$?
set -e
if [ "$sstatus" -ne 0 ]; then
    echo "FAIL: drained server exited $sstatus, want 0" >&2
    cat "$work/server.err" >&2
    exit 1
fi
if [ "$hstatus" -ne 0 ]; then
    echo "FAIL: mid-stream client exited $hstatus during drain" >&2
    cat "$work/drain-client.txt" >&2
    exit 1
fi
grep -q "1 results ok=1 drained" "$work/drain-client.txt" || {
    echo "FAIL: drained client did not get its flushed window + drained trailer:" >&2
    cat "$work/drain-client.txt" >&2
    exit 1
}
grep -q "decoded: drained; all completed windows were flushed" "$work/server.err" || {
    echo "FAIL: server did not report a clean drain:" >&2
    cat "$work/server.err" >&2
    exit 1
}
# Zero lost committed rounds: the final snapshot the server printed must
# show committed = 312 (pre-drain) + 4 (the drain client's window 0).
grep -q "committed=316" "$work/server.err" || {
    echo "FAIL: final stats lost committed rounds:" >&2
    grep "final stats" "$work/server.err" >&2
    exit 1
}
echo "OK: drain flushed the in-flight window, zero committed rounds lost"

echo "== latency log reads back clean"
if [ ! -s "$work/latency.jsonl" ]; then
    echo "FAIL: no latency log written" >&2
    exit 1
fi
# 79 windows decoded = 79 framed records, each with a valid CRC envelope.
lines="$(wc -l <"$work/latency.jsonl")"
if [ "$lines" -ne 79 ]; then
    echo "FAIL: latency log has $lines records, want 79" >&2
    exit 1
fi
if ! grep -q '"v":2,"crc":' "$work/latency.jsonl"; then
    echo "FAIL: latency log is not CRC-framed" >&2
    head -2 "$work/latency.jsonl" >&2
    exit 1
fi
echo "OK: latency log carries 79 framed samples"

echo "== second signal must force-exit (130) or lose the race to a clean drain (0)"
# With no streams the drain is nearly instant, so the two signals race
# the orderly exit; both outcomes are legal, but a forced exit must
# announce itself and carry the interrupted status. (The deterministic
# double-signal wedge test lives in crash_resume.sh, where cmd/ber's
# -linger provides an uninterruptible teardown.)
"$work/decoded" "${args[@]}" -listen 127.0.0.1:0 2>"$work/server3.err" &
spid3=$!
addr3="$(wait_for_addr "$work/server3.err")"
[ -n "$addr3" ] || { echo "FAIL: third decoded never announced"; exit 1; }
kill -TERM "$spid3"
sleep 0.2
kill -TERM "$spid3" 2>/dev/null || true
deadline=$((SECONDS + 10))
while kill -0 "$spid3" 2>/dev/null; do
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "FAIL: doubly-signalled decoded still alive after 10s" >&2
        kill -9 "$spid3" 2>/dev/null
        exit 1
    fi
    sleep 0.1
done
set +e
wait "$spid3"; status=$?
set -e
case "$status" in
130)
    grep -q "second signal; forcing exit" "$work/server3.err" || {
        echo "FAIL: forced exit did not announce itself:" >&2
        cat "$work/server3.err" >&2
        exit 1
    }
    ;;
0)
    grep -q "decoded: drained" "$work/server3.err" || {
        echo "FAIL: clean exit without a drain report:" >&2
        cat "$work/server3.err" >&2
        exit 1
    }
    ;;
*)
    echo "FAIL: double SIGTERM exited $status, want 130 (forced) or 0 (drain won the race)" >&2
    cat "$work/server3.err" >&2
    exit 1
    ;;
esac
echo "OK: second signal handled (exit $status)"

echo "ALL OK: online decode service drains cleanly with bit-identical corrections"
