#!/usr/bin/env bash
# Crash/resume integration check: run a checkpointed BER sweep, SIGKILL
# it mid-sweep (no chance to clean up — the same failure mode as OOM
# kills and node preemption), resume from the checkpoint directory, and
# require the resumed stdout to be byte-identical to a golden run that
# was never interrupted. Exercises the whole stack: atomic JSONL
# checkpoint writes, config fingerprinting, block-prefix resume, and
# byte-stable result reconstruction for finished points. A second leg
# corrupts a committed record in place and requires the resume to be
# refused with a quarantine sidecar, then recomputed bit-identically
# once the operator clears the damaged store. Distributed legs repeat
# the cycle with the sweep spread over fabric workers: first a manual
# coordinator restart, then a warm standby that must promote itself
# from the shared ledger at a fenced epoch with no operator in the
# loop.
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# 20000 shots/point = 313 blocks, comfortably past the 256-block
# checkpoint cadence, so the killed run leaves a *partial* record for
# the in-flight point, not just done-markers for finished ones.
args=(-fig 19 -ps 1e-3 -shots 20000 -workers 4 -seed 3)

go build -o "$work/ber" ./cmd/ber

echo "== golden run (uninterrupted)"
"$work/ber" "${args[@]}" >"$work/golden.txt"

echo "== checkpointed run, SIGKILL mid-sweep"
ckpt="$work/ckpt"
"$work/ber" "${args[@]}" -checkpoint "$ckpt" >"$work/killed.txt" 2>&1 &
pid=$!
# Kill as soon as the first checkpoint record lands, to leave most of
# the sweep outstanding for the resume leg.
for _ in $(seq 1 600); do
    [ -s "$ckpt/sweep.jsonl" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -9 "$pid" 2>/dev/null; then
    wait "$pid" 2>/dev/null || true
    echo "   killed pid $pid"
else
    echo "FAIL: sweep finished before it could be killed; grow -shots" >&2
    exit 1
fi
if [ ! -s "$ckpt/sweep.jsonl" ]; then
    echo "FAIL: SIGKILL'd run left no checkpoint records" >&2
    exit 1
fi
echo "   checkpoint records: $(wc -l <"$ckpt/sweep.jsonl")"

echo "== resumed run"
"$work/ber" "${args[@]}" -checkpoint "$ckpt" -resume >"$work/resumed.txt"

echo "== diff vs golden"
if ! diff -u "$work/golden.txt" "$work/resumed.txt"; then
    echo "FAIL: resumed sweep is not bit-identical to the golden run" >&2
    exit 1
fi
echo "OK: resumed sweep byte-identical to the uninterrupted run"

echo "== mid-file corruption must refuse to resume"
# Flip the first digit of record 2 — a complete, newline-terminated
# record, so the damage is bit-rot, not a torn tail — and require the
# resume to fail loudly instead of silently dropping the record.
sed -i '2s/[0-9]/X/' "$ckpt/sweep.jsonl"
if "$work/ber" "${args[@]}" -checkpoint "$ckpt" -resume >"$work/corrupt.txt" 2>&1; then
    echo "FAIL: resume over a corrupted checkpoint store succeeded" >&2
    exit 1
fi
if ! grep -q "corrupt record" "$work/corrupt.txt"; then
    echo "FAIL: corruption refusal does not explain itself:" >&2
    cat "$work/corrupt.txt" >&2
    exit 1
fi
if [ ! -s "$ckpt/sweep.jsonl.corrupt" ]; then
    echo "FAIL: no quarantine sidecar written for the damaged store" >&2
    exit 1
fi
echo "   refused, sidecar: $(wc -c <"$ckpt/sweep.jsonl.corrupt") bytes"

# The original is kept in place, so a blind rerun keeps failing until an
# operator looks at the sidecar and removes the damaged store.
if "$work/ber" "${args[@]}" -checkpoint "$ckpt" -resume >/dev/null 2>&1; then
    echo "FAIL: second resume over the same damaged store succeeded" >&2
    exit 1
fi

echo "== operator remediation: delete store, recompute fresh"
rm "$ckpt/sweep.jsonl" "$ckpt/sweep.jsonl.corrupt"
"$work/ber" "${args[@]}" -checkpoint "$ckpt" >"$work/fresh.txt"
if ! diff -u "$work/golden.txt" "$work/fresh.txt"; then
    echo "FAIL: post-remediation sweep is not bit-identical to the golden run" >&2
    exit 1
fi
echo "OK: corruption refused with forensics, recompute byte-identical"

# --- distributed leg: the same SIGKILL-and-resume cycle, but with the
# sweep spread over fabric workers and the kill hitting the coordinator.
# The resumed distributed sweep must be byte-identical to the *local*
# golden run — distribution, the crash, and the resume all invisible.

# wait_for_addr COORD_STDERR: echo the announced listen address.
wait_for_addr() {
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^ber: serving fabric on //p' "$1" | head -n1)"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    echo "$addr"
}

echo "== distributed leg: coordinator SIGKILL mid-sweep"
dckpt="$work/dckpt"
"$work/ber" "${args[@]}" -serve 127.0.0.1:0 -checkpoint "$dckpt" \
    >"$work/dist-killed.txt" 2>"$work/dist-coord1.err" &
cpid=$!
addr="$(wait_for_addr "$work/dist-coord1.err")"
if [ -z "$addr" ]; then
    echo "FAIL: coordinator never announced its address" >&2
    exit 1
fi
echo "   coordinator at $addr"
"$work/ber" -join "http://$addr" -worker-id w1 >/dev/null 2>"$work/dist-w1.err" &
w1=$!
"$work/ber" -join "http://$addr" -worker-id w2 >/dev/null 2>"$work/dist-w2.err" &
w2=$!
for _ in $(seq 1 600); do
    [ -s "$dckpt/sweep.jsonl" ] && break
    kill -0 "$cpid" 2>/dev/null || break
    sleep 0.1
done
if kill -9 "$cpid" 2>/dev/null; then
    wait "$cpid" 2>/dev/null || true
    echo "   killed coordinator pid $cpid"
else
    echo "FAIL: distributed sweep finished before it could be killed; grow -shots" >&2
    exit 1
fi
# The orphaned workers would retry the dead socket for their whole
# patience budget; a SIGTERM is the orderly leave path.
kill "$w1" "$w2" 2>/dev/null || true
wait "$w1" "$w2" 2>/dev/null || true
if [ ! -s "$dckpt/sweep.jsonl" ]; then
    echo "FAIL: killed coordinator left no checkpoint records" >&2
    exit 1
fi
echo "   checkpoint records: $(wc -l <"$dckpt/sweep.jsonl")"

echo "== second signal must force-exit immediately (130)"
# A first SIGINT starts the orderly drain; a second must kill the
# process right away with the interrupted status — the escape hatch
# when teardown wedges. The coordinator's -linger sleep is a
# deterministic wedge: after the first signal the process sits in an
# uninterruptible 60s pause, so only the force-exit path can explain
# a prompt exit with the announce line.
"$work/ber" "${args[@]}" -serve 127.0.0.1:0 -linger 60s \
    >"$work/twosig.txt" 2>&1 &
spid=$!
sleep 1
kill -INT "$spid" 2>/dev/null
sleep 1
kill -INT "$spid" 2>/dev/null
deadline=$((SECONDS + 10))
while kill -0 "$spid" 2>/dev/null; do
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "FAIL: doubly-signalled coordinator still alive after 10s (force-exit broken)" >&2
        kill -9 "$spid" 2>/dev/null
        exit 1
    fi
    sleep 0.1
done
set +e
wait "$spid"
status=$?
set -e
if [ "$status" -ne 130 ]; then
    echo "FAIL: double SIGINT exited $status, want 130" >&2
    cat "$work/twosig.txt" >&2
    exit 1
fi
if ! grep -q "second signal; forcing exit" "$work/twosig.txt"; then
    echo "FAIL: force-exit did not announce itself:" >&2
    cat "$work/twosig.txt" >&2
    exit 1
fi
echo "OK: second signal force-exited with status 130"

echo "== distributed resume with fresh workers"
"$work/ber" "${args[@]}" -serve 127.0.0.1:0 -checkpoint "$dckpt" -resume \
    >"$work/dist-resumed.txt" 2>"$work/dist-coord2.err" &
cpid=$!
addr="$(wait_for_addr "$work/dist-coord2.err")"
if [ -z "$addr" ]; then
    echo "FAIL: resumed coordinator never announced its address" >&2
    exit 1
fi
"$work/ber" -join "http://$addr" -worker-id w3 >/dev/null 2>"$work/dist-w3.err" &
w3=$!
"$work/ber" -join "http://$addr" -worker-id w4 >/dev/null 2>"$work/dist-w4.err" &
w4=$!
wait "$cpid"
wait "$w3"
wait "$w4"
if ! diff -u "$work/golden.txt" "$work/dist-resumed.txt"; then
    echo "FAIL: resumed distributed sweep is not bit-identical to the local golden run" >&2
    exit 1
fi
echo "OK: coordinator SIGKILL'd mid-sweep; distributed resume byte-identical to the local golden run"

# --- failover leg: this time nobody restarts anything by hand. A warm
# standby coordinator shares the primary's ledger, answers 503 until the
# primary goes dark, then promotes itself — rebuilding state from the
# ledger at a bumped epoch so the dead primary's stragglers are fenced.
# Workers are given both addresses up front and must ride the handoff.
# The promoted standby's stdout must still be byte-identical to the
# local golden run: the kill, the promotion and the fencing all cost
# wall-clock, never bits.

echo "== failover leg: SIGKILL primary, standby promotes from the shared ledger"
fckpt="$work/fckpt"
"$work/ber" "${args[@]}" -serve 127.0.0.1:0 -checkpoint "$fckpt" \
    >"$work/failover-primary.txt" 2>"$work/failover-pri.err" &
ppid=$!
paddr="$(wait_for_addr "$work/failover-pri.err")"
if [ -z "$paddr" ]; then
    echo "FAIL: failover primary never announced its address" >&2
    exit 1
fi
"$work/ber" "${args[@]}" -serve 127.0.0.1:0 -checkpoint "$fckpt" -resume \
    -standby-of "http://$paddr" -standby-probe 100ms \
    >"$work/failover.txt" 2>"$work/failover-sb.err" &
sbpid=$!
sbaddr=""
for _ in $(seq 1 100); do
    sbaddr="$(sed -n 's/^ber: standby fabric on \(.*\) (primary.*/\1/p' "$work/failover-sb.err" | head -n1)"
    [ -n "$sbaddr" ] && break
    sleep 0.1
done
if [ -z "$sbaddr" ]; then
    echo "FAIL: standby never announced itself" >&2
    exit 1
fi
echo "   primary at $paddr, standby at $sbaddr"
"$work/ber" -join "http://$paddr,http://$sbaddr" -worker-id f1 >/dev/null 2>"$work/failover-f1.err" &
f1=$!
"$work/ber" -join "http://$paddr,http://$sbaddr" -worker-id f2 >/dev/null 2>"$work/failover-f2.err" &
f2=$!
for _ in $(seq 1 600); do
    [ -s "$fckpt/sweep.jsonl" ] && break
    kill -0 "$ppid" 2>/dev/null || break
    sleep 0.1
done
if kill -9 "$ppid" 2>/dev/null; then
    wait "$ppid" 2>/dev/null || true
    echo "   killed primary pid $ppid"
else
    echo "FAIL: failover sweep finished before the primary could be killed; grow -shots" >&2
    exit 1
fi
# The standby must notice the dark primary, promote, and finish the
# sweep with the same fleet — no operator in the loop from here on.
wait "$sbpid"
wait "$f1"
wait "$f2"
if ! grep -q "standby taking over the sweep" "$work/failover-sb.err"; then
    echo "FAIL: standby never promoted itself:" >&2
    cat "$work/failover-sb.err" >&2
    exit 1
fi
if ! diff -u "$work/golden.txt" "$work/failover.txt"; then
    echo "FAIL: promoted standby's sweep is not bit-identical to the local golden run" >&2
    exit 1
fi
echo "OK: primary SIGKILL'd, standby promoted at a fenced epoch; sweep byte-identical to the local golden run"
