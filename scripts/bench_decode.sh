#!/usr/bin/env bash
# Decode-throughput regression gate.
#
# Runs the scalar/batch decode benchmark pairs and emits BENCH_decode.json,
# a machine-readable record of per-workload throughput and the batch/scalar
# speedup ratio. The gate compares RATIOS, not absolute shots/s: scalar and
# batch run in the same process on the same machine, so their ratio is
# robust to runner hardware while absolute numbers are not.
#
#   scripts/bench_decode.sh          check against the committed baseline
#   scripts/bench_decode.sh update   rewrite BENCH_decode.json in place
#
# Check mode fails when any workload's batch speedup regresses more than
# 10% below the committed baseline, or when the planar d=5 MWPM speedup
# falls below the 2x acceptance floor.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
BASELINE=BENCH_decode.json
FLOOR_PLANAR_D5=2.0

case "$MODE" in
check | update) ;;
*)
  echo "usage: $0 [check|update]" >&2
  exit 2
  ;;
esac

echo "bench_decode: running decode benchmarks (this takes a couple of minutes)..." >&2
bench_out=$(go test -run '^$' \
  -bench '^(BenchmarkDecodeMWPMPlanarD5|BenchmarkDecodeBatchMWPMPlanarD5|BenchmarkDecodeMWPM|BenchmarkDecodeBatchMWPM|BenchmarkDecodeUnionFind|BenchmarkDecodeBatchUnionFind)$' \
  -benchtime 1s -count 1 .)
echo "$bench_out" >&2

# shots <BenchmarkName> — the value of the shots/s metric for one
# benchmark (names carry a -GOMAXPROCS suffix in the output).
shots() {
  local v
  v=$(echo "$bench_out" | awk -v name="$1" '
    $1 ~ "^"name"(-[0-9]+)?$" {
      for (i = 2; i <= NF; i++) if ($i == "shots/s") { print $(i-1); exit }
    }')
  if [ -z "$v" ]; then
    echo "bench_decode: no shots/s metric for $1 in the benchmark output" >&2
    exit 1
  fi
  echo "$v"
}

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

planar_scalar=$(shots BenchmarkDecodeMWPMPlanarD5)
planar_batch=$(shots BenchmarkDecodeBatchMWPMPlanarD5)
mwpm_scalar=$(shots BenchmarkDecodeMWPM)
mwpm_batch=$(shots BenchmarkDecodeBatchMWPM)
uf_scalar=$(shots BenchmarkDecodeUnionFind)
uf_batch=$(shots BenchmarkDecodeBatchUnionFind)

planar_speedup=$(ratio "$planar_batch" "$planar_scalar")
mwpm_speedup=$(ratio "$mwpm_batch" "$mwpm_scalar")
uf_speedup=$(ratio "$uf_batch" "$uf_scalar")

# The committed baseline is deliberately conservative: 70% of the
# measured speedup. Speedup ratios this large (the memo-hit path is
# pure memory traffic, the scalar path is matching compute) shift
# double-digit percentages between CPU generations, so gating at
# 90%-of-measured would page on runner hardware, not regressions. A
# real regression — the memo disengaging, the fast path breaking —
# collapses the ratio toward 1x and still trips the gate decisively.
conservative() { awk -v s="$1" 'BEGIN { printf "%.2f", s * 0.7 }'; }

# One workload per line: the check below greps its baseline back out of
# this file, so the layout is part of the format (schema fpn-bench-decode/1).
emit() {
  cat <<EOF
{
  "schema": "fpn-bench-decode/1",
  "note": "batch_speedup is the gated baseline (70% of measured_speedup at update time); speedups are batch shots/s over scalar shots/s in the same process, so they are robust to runner hardware while absolute throughput is informational",
  "workloads": {
    "planar-d5-plain-mwpm": {"scalar_shots_per_sec": $planar_scalar, "batch_shots_per_sec": $planar_batch, "measured_speedup": $planar_speedup, "batch_speedup": $(conservative "$planar_speedup")},
    "hyper-30-8-3-3-flagged-mwpm": {"scalar_shots_per_sec": $mwpm_scalar, "batch_shots_per_sec": $mwpm_batch, "measured_speedup": $mwpm_speedup, "batch_speedup": $(conservative "$mwpm_speedup")},
    "hyper-30-8-3-3-flagged-unionfind": {"scalar_shots_per_sec": $uf_scalar, "batch_shots_per_sec": $uf_batch, "measured_speedup": $uf_speedup, "batch_speedup": $(conservative "$uf_speedup")}
  }
}
EOF
}

if [ "$MODE" = update ]; then
  emit >"$BASELINE"
  echo "bench_decode: wrote $BASELINE" >&2
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench_decode: no committed $BASELINE; run 'scripts/bench_decode.sh update' and commit it" >&2
  exit 1
fi

# baseline_speedup <workload> — the committed batch_speedup for one workload.
baseline_speedup() {
  local v
  v=$(grep "\"$1\"" "$BASELINE" | sed -n 's/.*"batch_speedup": *\([0-9.][0-9.]*\).*/\1/p')
  if [ -z "$v" ]; then
    echo "bench_decode: workload $1 missing from $BASELINE; rerun 'scripts/bench_decode.sh update'" >&2
    exit 1
  fi
  echo "$v"
}

fail=0
check_workload() {
  local name="$1" got="$2" floor="$3"
  local base allowed
  base=$(baseline_speedup "$name")
  allowed=$(awk -v b="$base" 'BEGIN { printf "%.2f", b * 0.9 }')
  echo "bench_decode: $name: batch speedup ${got}x (baseline ${base}x, gate >= ${allowed}x, floor >= ${floor}x)"
  if awk -v g="$got" -v a="$allowed" 'BEGIN { exit !(g < a) }'; then
    echo "bench_decode: FAIL: $name regressed more than 10% below the committed baseline" >&2
    fail=1
  fi
  if awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g < f) }'; then
    echo "bench_decode: FAIL: $name fell below the hard acceptance floor of ${floor}x" >&2
    fail=1
  fi
}

check_workload planar-d5-plain-mwpm "$planar_speedup" "$FLOOR_PLANAR_D5"
check_workload hyper-30-8-3-3-flagged-mwpm "$mwpm_speedup" 1.0
check_workload hyper-30-8-3-3-flagged-unionfind "$uf_speedup" 1.0

if [ "$fail" -ne 0 ]; then
  echo "bench_decode: regression gate failed (if the change is an accepted tradeoff, rerun 'scripts/bench_decode.sh update' and commit the new baseline)" >&2
  exit 1
fi
echo "bench_decode: all workloads within 10% of the committed baseline"
