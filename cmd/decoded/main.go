// Command decoded is the online decode service: it serves a rotated
// surface code's decoder over HTTP, accepting CRC32-C-framed streams of
// per-round syndromes and returning per-window corrections under an
// explicit latency SLO — bounded admission, per-window decode deadlines
// with fallback-chain degradation, slow-client cutoffs, and drain-on-
// SIGTERM that flushes every window already received in full. See
// EXPERIMENTS.md ("Online decoding") for the protocol and the fault
// matrix.
//
// Server mode (default):
//
//	decoded -listen 127.0.0.1:9912 -d 3 -p 5e-3 -fallback plain-mwpm -decode-timeout 10ms
//
// Client mode (load generator / verifier; the circuit flags must match
// the server's, enforced by the configuration fingerprint):
//
//	decoded -connect http://127.0.0.1:9912 -d 3 -p 5e-3 -shots 64 -verify
//
// The client's -chaos flag replays the service fault plans (torn,
// disconnect, hang) against a live server, for the drain test and for
// poking at a deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/fpn/flagproxy/internal/chaos"
	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/rtd"
	"github.com/fpn/flagproxy/internal/sim"
	"github.com/fpn/flagproxy/internal/surface"
)

// exitInterrupted mirrors cmd/ber: the status for a service cut short by
// a second signal before the drain finished.
const exitInterrupted = 130

var fpnArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

func main() {
	cfg, err := parseArgs(os.Args[1:])
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	o, err := buildOnline(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decoded:", err)
		os.Exit(1)
	}
	if cfg.connectURL != "" {
		os.Exit(runClient(cfg, o))
	}
	os.Exit(runServer(cfg, o))
}

// cliConfig is the parsed and validated command line.
type cliConfig struct {
	// Shared circuit/decoder knobs (fingerprinted; client and server must
	// agree).
	distance int
	p        float64
	rounds   int
	basis    css.Basis
	decoder  experiment.DecoderKind
	fallback []experiment.DecoderKind
	seed     int64

	// Server knobs.
	listenAddr   string
	decTimeout   time.Duration
	queueDepth   int
	maxStreams   int
	workers      int
	readTimeout  time.Duration
	writeTimeout time.Duration
	latlogPath   string

	// Client knobs.
	connectURL string
	shots      int
	verify     bool
	chaosMode  string
	showStats  bool
}

func parseArgs(args []string) (*cliConfig, error) {
	fs := flag.NewFlagSet("decoded", flag.ContinueOnError)
	d := fs.Int("d", 3, "rotated surface code distance to serve")
	p := fs.Float64("p", 5e-3, "physical error rate of the serving noise model")
	rounds := fs.Int("rounds", 0, "measurement rounds per window (0 = distance)")
	basisFlag := fs.String("basis", "Z", "memory basis: X or Z")
	decFlag := fs.String("decoder", "flagged-mwpm", "primary decoder kind")
	fallbackFlag := fs.String("fallback", "", "comma-separated fallback decoder kinds walked when the primary times out or panics (e.g. plain-mwpm)")
	seed := fs.Int64("seed", 11, "noise-model seed (client sampling; part of the fingerprint)")

	listen := fs.String("listen", "127.0.0.1:9912", "serve on this address")
	decTimeout := fs.Duration("decode-timeout", 0, "per-window decode deadline; a window over it degrades to -fallback and is counted (0 = off)")
	queue := fs.Int("queue", 0, "decode queue depth; a window hitting a full queue is shed with an explicit verdict (0 = 64)")
	maxStreams := fs.Int("max-streams", 0, "concurrent syndrome streams; excess requests get 429 (0 = 16)")
	workers := fs.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "per-frame request read deadline; silent clients are cut off and counted")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "per-frame response write deadline; clients that stop reading forfeit the rest")
	latlog := fs.String("latlog", "", "append per-window latency samples to this CRC-framed JSONL file (empty = off)")

	connect := fs.String("connect", "", "run as client against the decoded server at this URL instead of serving")
	shots := fs.Int("shots", 64, "windows to stream in client mode")
	verify := fs.Bool("verify", false, "client mode: recompute every correction offline and require bit-identity")
	chaosFlag := fs.String("chaos", "", "client mode: send a faulted stream instead of a healthy one (torn, disconnect, hang, or cut — a resumable stream reset mid-body twice and resumed)")
	showStats := fs.Bool("stats", false, "client mode: print the server's /statz after the stream")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *d < 3 || *d%2 == 0 {
		return nil, fmt.Errorf("-d must be an odd distance >= 3 (got %d)", *d)
	}
	if *p <= 0 || *p >= 1 {
		return nil, fmt.Errorf("-p must be in (0, 1) (got %g)", *p)
	}
	if *rounds < 0 {
		return nil, fmt.Errorf("-rounds must be >= 0 (got %d)", *rounds)
	}
	var basis css.Basis
	switch strings.ToUpper(*basisFlag) {
	case "X":
		basis = css.X
	case "Z":
		basis = css.Z
	default:
		return nil, fmt.Errorf("-basis must be X or Z (got %q)", *basisFlag)
	}
	dec, err := decoderKindByName(*decFlag)
	if err != nil {
		return nil, err
	}
	var fallback []experiment.DecoderKind
	if *fallbackFlag != "" {
		for _, s := range strings.Split(*fallbackFlag, ",") {
			k, err := decoderKindByName(strings.TrimSpace(s))
			if err != nil {
				return nil, err
			}
			fallback = append(fallback, k)
		}
	}
	if *decTimeout < 0 {
		return nil, fmt.Errorf("-decode-timeout must be >= 0 (got %v)", *decTimeout)
	}
	if *queue < 0 || *maxStreams < 0 || *workers < 0 {
		return nil, fmt.Errorf("-queue, -max-streams and -workers must be >= 0")
	}
	if *readTimeout <= 0 || *writeTimeout <= 0 {
		return nil, fmt.Errorf("-read-timeout and -write-timeout must be positive")
	}
	if *shots <= 0 {
		return nil, fmt.Errorf("-shots must be positive (got %d)", *shots)
	}
	switch *chaosFlag {
	case "", "torn", "disconnect", "hang", "cut":
	default:
		return nil, fmt.Errorf("-chaos must be torn, disconnect, hang or cut (got %q)", *chaosFlag)
	}
	if *chaosFlag != "" && *connect == "" {
		return nil, fmt.Errorf("-chaos requires -connect")
	}
	// A cut stream resumes and assembles the complete result set, so
	// -verify composes with it — that pairing is the whole point of the
	// resume handshake. The other chaos modes end with a deliberately
	// incomplete stream, which -verify would always (correctly) fail.
	if *verify && *chaosFlag != "" && *chaosFlag != "cut" {
		return nil, fmt.Errorf("-verify needs a complete stream; use -chaos cut or drop -chaos")
	}
	return &cliConfig{
		distance: *d, p: *p, rounds: *rounds, basis: basis,
		decoder: dec, fallback: fallback, seed: *seed,
		listenAddr: *listen, decTimeout: *decTimeout, queueDepth: *queue,
		maxStreams: *maxStreams, workers: *workers,
		readTimeout: *readTimeout, writeTimeout: *writeTimeout, latlogPath: *latlog,
		connectURL: *connect, shots: *shots, verify: *verify,
		chaosMode: *chaosFlag, showStats: *showStats,
	}, nil
}

// decoderKindByName resolves a decoder flag against the canonical
// DecoderKind names.
func decoderKindByName(name string) (experiment.DecoderKind, error) {
	for k := experiment.FlaggedMWPM; k <= experiment.BPOSD; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown decoder kind %q (want one of flagged-mwpm, plain-mwpm, flagged-restriction, baseline-restriction, flagged-unionfind, bp-osd)", name)
}

// buildOnline constructs the decode stack both modes share; the client
// builds its own copy so the fingerprint handshake catches any drift
// between the two processes' configurations.
func buildOnline(cfg *cliConfig) (*experiment.Online, error) {
	l, err := surface.Rotated(cfg.distance)
	if err != nil {
		return nil, err
	}
	pl, err := experiment.NewPipeline(l.Code, fpnArch)
	if err != nil {
		return nil, err
	}
	return pl.NewOnline(experiment.Config{
		Code: l.Code, Arch: fpnArch, Basis: cfg.basis, Rounds: cfg.rounds,
		P: cfg.p, Seed: cfg.seed, Decoder: cfg.decoder, Fallback: cfg.fallback,
	})
}

func runServer(cfg *cliConfig, o *experiment.Online) int {
	opt := rtd.Options{
		Online:        o,
		MaxStreams:    cfg.maxStreams,
		QueueDepth:    cfg.queueDepth,
		Workers:       cfg.workers,
		DecodeTimeout: cfg.decTimeout,
		ReadTimeout:   cfg.readTimeout,
		WriteTimeout:  cfg.writeTimeout,
		Log:           os.Stderr,
	}
	var latlog *checkpoint.LatencyLog
	if cfg.latlogPath != "" {
		var err error
		latlog, err = checkpoint.OpenLatencyLog(cfg.latlogPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decoded:", err)
			return 1
		}
		opt.OnLatency = func(s rtd.LatencySample) {
			_ = latlog.Append(checkpoint.LatencyRec{Window: s.Window, Status: s.Status, Decoder: s.Decoder, Ns: s.Ns})
		}
	}
	s, err := rtd.NewServer(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decoded:", err)
		return 1
	}
	ln, err := net.Listen("tcp", cfg.listenAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decoded:", err)
		return 1
	}
	// Streams are long-lived by design, so no blanket read/write timeouts
	// here — the rtd server arms per-frame deadlines itself. The header
	// and idle timeouts bound everything outside an accepted stream.
	hsrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = hsrv.Serve(ln) }()
	// Parsed by scripts (decoded_drain.sh) to discover a :0 port.
	fmt.Fprintf(os.Stderr, "decoded: serving on %s (fingerprint %s)\n", ln.Addr(), o.Config().Fingerprint())

	// First SIGINT/SIGTERM drains: intake stops, in-flight windows flush,
	// every stream closes with a drained trailer, and the final counter
	// snapshot is printed. A second signal force-exits immediately so a
	// wedged drain (a decoder stuck past every deadline) can be escaped.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "decoded: second signal; forcing exit without drain")
		os.Exit(exitInterrupted)
	}()
	fmt.Fprintln(os.Stderr, "decoded: draining")
	s.Drain()
	_ = hsrv.Close()
	s.Close()
	if latlog != nil {
		_ = latlog.Close()
	}
	printStats(os.Stderr, s.Stats())
	fmt.Fprintln(os.Stderr, "decoded: drained; all completed windows were flushed")
	return 0
}

func runClient(cfg *cliConfig, o *experiment.Online) int {
	c := o.Circuit()
	smp := sim.NewBlockSampler(c, (cfg.shots+63)/64)
	if err := smp.Validate(0, cfg.shots); err != nil {
		fmt.Fprintln(os.Stderr, "decoded:", err)
		return 1
	}
	res := smp.Run(0, cfg.shots, cfg.seed)
	wins := rtd.BuildWindows(c, res, 0, cfg.shots)
	fp := o.Config().Fingerprint()
	cl := &rtd.Client{URL: cfg.connectURL}
	ctx := context.Background()

	var out *rtd.StreamOutcome
	var err error
	switch cfg.chaosMode {
	case "":
		out, err = cl.Stream(ctx, fp, wins)
	case "cut":
		// Partition drill: the transport resets the first two stream
		// POSTs mid-body at plan-chosen byte offsets, and the resumable
		// client rides the cuts out — salvage, /v1/resume handshake,
		// resend of exactly the uncommitted suffix. The assembled result
		// set must be complete, which is why -verify composes with this
		// mode and no other chaos mode.
		cl.HTTP = &http.Client{Transport: &chaos.NetFault{
			Plan: chaos.Plan{Seed: cfg.seed, Name: "decoded-cut"},
			Mode: chaos.NetReset, Times: 2, Path: "/v1/stream",
		}}
		out, err = cl.StreamResumable(ctx, fp, fmt.Sprintf("cut-%d", cfg.seed), wins, 4)
	default:
		frames, ferr := rtd.EncodeWindows(fp, wins)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "decoded:", ferr)
			return 1
		}
		rpw := rpwOf(c)
		plan := chaos.Plan{Seed: cfg.seed, Name: "decoded-" + cfg.chaosMode}
		switch cfg.chaosMode {
		case "torn":
			// Cut strictly inside the second round of the last window.
			out, err = cl.StreamBody(ctx, chaos.TornBody(plan, frames, 1+(len(wins)-1)*rpw+1))
		case "disconnect":
			// Vanish cleanly after all but the last window.
			out, err = cl.StreamBody(ctx, chaos.DisconnectBody(frames, 1+(len(wins)-1)*rpw))
		case "hang":
			// One full window, then silence until the server cuts us off.
			hb := chaos.NewHangingBody(frames, 1+rpw)
			defer hb.Release()
			out, err = cl.StreamBody(ctx, hb)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "decoded:", err)
		return 1
	}

	counts := map[string]int{}
	for _, r := range out.Results {
		counts[r.Status]++
	}
	fmt.Printf("decoded: %d results", len(out.Results))
	for _, st := range []string{rtd.StatusOK, rtd.StatusDegraded, rtd.StatusShed, rtd.StatusError, rtd.StatusDeadline, rtd.StatusFailed} {
		if counts[st] > 0 {
			fmt.Printf(" %s=%d", st, counts[st])
		}
	}
	if out.Drained {
		fmt.Printf(" drained")
	}
	if out.Reconnects > 0 {
		fmt.Printf(" reconnects=%d", out.Reconnects)
	}
	fmt.Println()
	if out.Fatal != "" {
		fmt.Printf("decoded: server verdict: %s\n", out.Fatal)
	}

	if cfg.verify {
		if code := verifyOutcome(o, res, out); code != 0 {
			return code
		}
	}
	if cfg.showStats {
		resp, err := http.Get(cfg.connectURL + "/statz")
		if err != nil {
			fmt.Fprintln(os.Stderr, "decoded:", err)
			return 1
		}
		defer func() { _ = resp.Body.Close() }()
		_, _ = io.Copy(os.Stdout, resp.Body)
	}
	return 0
}

// verifyOutcome recomputes every committed correction on the client's
// own decode stack — the exact offline path — and requires bit-identity.
func verifyOutcome(o *experiment.Online, res *sim.Result, out *rtd.StreamOutcome) int {
	pd := o.Acquire()
	defer pd.Release()
	verified := 0
	for i, r := range out.Results {
		if !r.Committed() {
			fmt.Fprintf(os.Stderr, "decoded: verify: window %d not committed (status %s)\n", i, r.Status)
			return 1
		}
		shot := i
		corr, err := pd.Decode(func(d int) bool { return res.DetectorBit(d, shot) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "decoded: verify:", err)
			return 1
		}
		var want []int
		for ob, c := range corr {
			if c {
				want = append(want, ob)
			}
		}
		if len(want) != len(r.Flips) {
			fmt.Fprintf(os.Stderr, "decoded: verify: window %d: online flips %v != offline %v\n", i, r.Flips, want)
			return 1
		}
		for j := range want {
			if want[j] != r.Flips[j] {
				fmt.Fprintf(os.Stderr, "decoded: verify: window %d: online flips %v != offline %v\n", i, r.Flips, want)
				return 1
			}
		}
		verified++
	}
	fmt.Printf("decoded: verify: %d/%d corrections bit-identical to offline decode\n", verified, len(out.Results))
	return 0
}

// rpwOf computes the rounds per window — the circuit's full round span,
// matching what the server derives for the same configuration.
func rpwOf(c *circuit.Circuit) int {
	rpw := 0
	for _, d := range c.Detectors {
		if d.Round+1 > rpw {
			rpw = d.Round + 1
		}
	}
	return rpw
}

func printStats(w io.Writer, st rtd.Stats) {
	fmt.Fprintf(w, "decoded: final stats: streams=%d shed=%d torn=%d hung=%d\n",
		st.Streams, st.StreamsShed, st.StreamsTorn, st.HungClients)
	fmt.Fprintf(w, "decoded: final stats: rounds received=%d committed=%d timeout=%d degraded=%d shed=%d failed=%d dropped=%d decode-errors=%d\n",
		st.RoundsReceived, st.CommittedRounds, st.TimeoutRounds, st.DegradedRounds,
		st.ShedRounds, st.FailedRounds, st.DroppedRounds, st.DecodeErrors)
	fmt.Fprintf(w, "decoded: final stats: windows=%d p50=%s p99=%s p999=%s\n",
		st.Windows, time.Duration(st.P50Ns), time.Duration(st.P99Ns), time.Duration(st.P999Ns))
}
