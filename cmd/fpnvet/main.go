// Command fpnvet runs the repository's static-analysis suite: checks
// that mechanically enforce the invariants the test matrix can only
// spot-check — seed-reproducible randomness (detrand), deterministic
// map handling (maporder), allocation-free decode hot paths (hotalloc),
// complete checkpoint fingerprints (fingerprintcover), panic-safe
// decoder entry points (recoverguard), no silently dropped errors
// (errdrop), wall-clock-free result paths in the distributed sweep
// fabric (leaseguard), mutex-guarded shared state (guardedby), provable
// goroutine exit paths (goexit), and deadline-dominated network I/O in
// the service layers (netdeadline).
//
// Usage:
//
//	go run ./cmd/fpnvet ./...
//
// Findings print as "file:line: [analyzer] message"; with -json they
// print as a JSON array of {file,line,analyzer,message} objects with
// module-relative paths. The exit status is 1 when there are findings,
// 2 on load or internal errors, 0 on a clean tree. CI runs it next to
// go vet.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fpn/flagproxy/internal/analysis"
	"github.com/fpn/flagproxy/internal/analysis/detrand"
	"github.com/fpn/flagproxy/internal/analysis/errdrop"
	"github.com/fpn/flagproxy/internal/analysis/fingerprintcover"
	"github.com/fpn/flagproxy/internal/analysis/goexit"
	"github.com/fpn/flagproxy/internal/analysis/guardedby"
	"github.com/fpn/flagproxy/internal/analysis/hotalloc"
	"github.com/fpn/flagproxy/internal/analysis/leaseguard"
	"github.com/fpn/flagproxy/internal/analysis/maporder"
	"github.com/fpn/flagproxy/internal/analysis/netdeadline"
	"github.com/fpn/flagproxy/internal/analysis/recoverguard"
)

// all is the default analyzer suite, in reporting order.
var all = []*analysis.Analyzer{
	detrand.Analyzer,
	maporder.Analyzer,
	hotalloc.Analyzer,
	fingerprintcover.Analyzer,
	recoverguard.Analyzer,
	errdrop.Analyzer,
	leaseguard.Analyzer,
	guardedby.Analyzer,
	goexit.Analyzer,
	netdeadline.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "print findings as a JSON array with module-relative paths")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fpnvet [-list] [-json] [-run name,...] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the flag-proxy repo's static invariants over the given package\n")
		fmt.Fprintf(os.Stderr, "patterns (default ./...). See EXPERIMENTS.md for the invariant docs.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *only != "" {
		analyzers = nil
		want := map[string]bool{}
		for _, name := range splitComma(*only) {
			want[name] = true
		}
		for _, a := range all {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		for name := range want { //fpnvet:orderless error listing, sorted only by map size ≤ a few names
			fmt.Fprintf(os.Stderr, "fpnvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
	}

	prog, err := analysis.Load(analysis.LoadConfig{}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpnvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpnvet:", err)
		os.Exit(2)
	}
	if *asJSON {
		if err := analysis.WriteJSON(os.Stdout, prog.ModuleRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "fpnvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fpnvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// splitComma splits a comma-separated list, dropping empty elements.
func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
