package main

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis"
)

// BenchmarkFpnvetModule measures one full CI static-analysis pass: load
// and type-check the whole module, then run every analyzer. The load
// dominates; the shared standard-library importer (load.go) makes
// iterations after the first cheap, which is exactly the effect the
// benchmark exists to watch.
func BenchmarkFpnvetModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := analysis.Load(analysis.LoadConfig{Dir: "../.."}, "./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := analysis.Run(prog, all)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("module is not fpnvet-clean: %s (and %d more)", diags[0], len(diags)-1)
		}
	}
}
