// Command schedule reproduces Figure 14: syndrome-extraction latencies
// of the greedy scheduling algorithm (Algorithm 1) on the raw code
// Tanner graphs, compared against the theoretical shortest
// (890 + 40·δ ns) and longest (890 + 40·(δX+δZ) ns) circuits, plus the
// FPN latencies of §V-G3.
package main

import (
	"flag"
	"fmt"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
)

func main() {
	withFPN := flag.Bool("fpn", true, "also print FPN (flag+proxy) round latencies")
	flag.Parse()

	fmt.Println("Figure 14: greedy syndrome-extraction latencies (direct architecture)")
	fmt.Printf("%-8s %-16s %6s %6s %9s %9s %9s\n",
		"family", "code", "δX", "δZ", "greedy", "shortest", "longest")
	report := func(family, name string, code *css.Code) {
		net, err := fpn.Build(code, fpn.Options{})
		if err != nil {
			fmt.Printf("%-8s %-16s build error: %v\n", family, name, err)
			return
		}
		s, err := schedule.Greedy(net)
		if err != nil {
			fmt.Printf("%-8s %-16s schedule error: %v\n", family, name, err)
			return
		}
		plan, err := schedule.BuildRoundPlan(s)
		if err != nil {
			fmt.Printf("%-8s %-16s plan error: %v\n", family, name, err)
			return
		}
		dx := code.MaxWeight(css.X)
		dz := code.MaxWeight(css.Z)
		dmax := dx
		if dz > dmax {
			dmax = dz
		}
		fmt.Printf("%-8s %-16s %6d %6d %8.0fns %8.0fns %8.0fns\n",
			family, name, dx, dz, plan.LatencyNs,
			schedule.TheoreticalShortestNs(dmax),
			schedule.TheoreticalLongestNs(dx, dz))
	}
	for _, d := range []int{3, 5, 7} {
		l, err := surface.Rotated(d)
		if err != nil {
			continue
		}
		report("planar", l.Code.Name, l.Code)
	}
	for _, e := range catalog.Standard() {
		report(e.Family, e.Code.Name, e.Code)
	}

	if *withFPN {
		fmt.Println()
		fmt.Println("§V-G3: FPN (flags shared, degree ≤ 4) round latencies")
		fmt.Printf("%-8s %-16s %8s %8s %10s\n", "family", "code", "phases", "CXlayers", "latency")
		for _, e := range catalog.Standard() {
			net, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
			if err != nil {
				continue
			}
			s, err := schedule.Greedy(net)
			if err != nil {
				continue
			}
			plan, err := schedule.BuildRoundPlan(s)
			if err != nil {
				continue
			}
			fmt.Printf("%-8s %-16s %8d %8d %8.0fns\n",
				e.Family, e.Code.Name, plan.Phases, plan.CXLayers, plan.LatencyNs)
		}
	}
}
