package main

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/experiment"
)

func TestParseArgsDefaults(t *testing.T) {
	cfg, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.fig != "19" || cfg.shots != 2000 || cfg.seed != 1 || cfg.maxN != 64 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if len(cfg.ps) != 2 || cfg.ps[0] != 5e-4 || cfg.ps[1] != 1e-3 {
		t.Errorf("default -ps parsed as %v", cfg.ps)
	}
	if cfg.workers != 0 || cfg.shard != 0 || cfg.targetErrors != 0 || cfg.maxCI != 0 {
		t.Errorf("engine knobs should default to 0: %+v", cfg)
	}
}

func TestParseArgsValid(t *testing.T) {
	cfg, err := parseArgs([]string{
		"-fig", "17", "-shots", "50000", "-seed", "7",
		"-ps", " 1e-3 ,2e-3,5e-3", "-maxn", "160",
		"-workers", "4", "-shard", "4096",
		"-target-errors", "100", "-max-ci", "0.02",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.fig != "17" || cfg.shots != 50000 || cfg.seed != 7 || cfg.maxN != 160 ||
		cfg.workers != 4 || cfg.shard != 4096 || cfg.targetErrors != 100 ||
		math.Abs(cfg.maxCI-0.02) > 1e-15 {
		t.Errorf("parsed %+v", cfg)
	}
	want := []float64{1e-3, 2e-3, 5e-3}
	if len(cfg.ps) != len(want) {
		t.Fatalf("-ps parsed as %v", cfg.ps)
	}
	for i, p := range want {
		if cfg.ps[i] != p {
			t.Errorf("-ps[%d] = %g, want %g", i, cfg.ps[i], p)
		}
	}
}

func TestParseArgsInvalid(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown fig", []string{"-fig", "21"}, "unknown figure"},
		{"fig garbage", []string{"-fig", "nineteen"}, "unknown figure"},
		{"zero shots", []string{"-shots", "0"}, "-shots must be positive"},
		{"negative shots", []string{"-shots", "-5"}, "-shots must be positive"},
		{"zero maxn", []string{"-maxn", "0"}, "-maxn must be positive"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be >= 0"},
		{"negative shard", []string{"-shard", "-64"}, "-shard must be >= 0"},
		{"negative target-errors", []string{"-target-errors", "-2"}, "-target-errors must be >= 0"},
		{"negative max-ci", []string{"-max-ci", "-0.1"}, "-max-ci must be in [0, 1)"},
		{"max-ci at one", []string{"-max-ci", "1"}, "-max-ci must be in [0, 1)"},
		{"unparsable ps", []string{"-ps", "1e-3,banana"}, "bad -ps entry"},
		{"empty ps entry", []string{"-ps", "1e-3,,2e-3"}, "bad -ps entry"},
		{"ps zero", []string{"-ps", "0"}, "not a physical error rate"},
		{"ps at one", []string{"-ps", "1"}, "not a physical error rate"},
		{"ps negative", []string{"-ps", "-1e-3"}, "not a physical error rate"},
		{"non-integer workers", []string{"-workers", "two"}, "invalid value"},
		{"negative decode-timeout", []string{"-decode-timeout", "-1s"}, "-decode-timeout must be >= 0"},
		{"unknown fallback kind", []string{"-fallback", "mwpm"}, "unknown decoder kind"},
		{"fallback typo", []string{"-fallback", "plain-mwpm,bposd"}, "unknown decoder kind"},
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"serve and join", []string{"-serve", ":9911", "-join", "http://h:9911"}, "mutually exclusive"},
		{"join with checkpoint", []string{"-join", "http://h:9911", "-checkpoint", "/tmp/c"}, "coordinator owns the ledger"},
		{"join with resume", []string{"-join", "http://h:9911", "-checkpoint", "/tmp/c", "-resume"}, "coordinator owns the ledger"},
		{"serve with decode-timeout", []string{"-serve", ":9911", "-decode-timeout", "5s"}, "do not cross the fabric"},
		{"serve with fallback", []string{"-serve", ":9911", "-fallback", "plain-mwpm"}, "do not cross the fabric"},
		{"zero lease-ttl", []string{"-serve", ":9911", "-lease-ttl", "0s"}, "-lease-ttl must be positive"},
		{"negative linger", []string{"-serve", ":9911", "-linger", "-1s"}, "-linger must be >= 0"},
		{"empty join entry", []string{"-join", "http://a:1,,http://b:2"}, "empty address"},
		{"negative max-retries", []string{"-join", "http://h:9911", "-max-retries", "-1"}, "-max-retries must be >= 0"},
		{"max-retries without join", []string{"-max-retries", "5"}, "only applies to -join"},
		{"standby without serve", []string{"-standby-of", "http://h:9911", "-checkpoint", "/tmp/c", "-resume"}, "requires -serve"},
		{"standby without ledger", []string{"-serve", ":9912", "-standby-of", "http://h:9911"}, "requires -checkpoint and -resume"},
		{"standby without resume", []string{"-serve", ":9912", "-standby-of", "http://h:9911", "-checkpoint", "/tmp/c"}, "requires -checkpoint and -resume"},
		{"zero standby-probe", []string{"-serve", ":9912", "-standby-of", "http://h:9911", "-checkpoint", "/tmp/c", "-resume", "-standby-probe", "0s"}, "-standby-probe must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if err == nil {
				t.Fatalf("parseArgs(%v) accepted invalid input", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseArgs(%v) error %q, want it to mention %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestParseArgsCheckpointFlags(t *testing.T) {
	cfg, err := parseArgs([]string{"-checkpoint", "/tmp/ckpt", "-resume"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.checkpointDir != "/tmp/ckpt" || !cfg.resume {
		t.Errorf("checkpoint flags parsed as %+v", cfg)
	}
	// -checkpoint alone (fresh sweep, record as you go) is legal.
	cfg, err = parseArgs([]string{"-checkpoint", "/tmp/ckpt"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.checkpointDir != "/tmp/ckpt" || cfg.resume {
		t.Errorf("checkpoint-only parsed as %+v", cfg)
	}
}

func TestParseArgsFabricFlags(t *testing.T) {
	cfg, err := parseArgs([]string{"-serve", "127.0.0.1:0", "-checkpoint", "/tmp/c", "-resume", "-lease-ttl", "5s", "-linger", "100ms"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.serveAddr != "127.0.0.1:0" || cfg.leaseTTL != 5*time.Second || cfg.linger != 100*time.Millisecond {
		t.Errorf("serve flags parsed as %+v", cfg)
	}
	cfg, err = parseArgs([]string{"-join", "http://host:9911", "-worker-id", "w7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.joinURLs) != 1 || cfg.joinURLs[0] != "http://host:9911" || cfg.workerID != "w7" {
		t.Errorf("join flags parsed as %+v", cfg)
	}
	if cfg.leaseTTL != 30*time.Second || cfg.linger != 2*time.Second {
		t.Errorf("fabric duration defaults parsed as %+v", cfg)
	}
	// A comma-separated -join is a failover list: primary first, then
	// standbys, whitespace-tolerant like -ps and -fallback.
	cfg, err = parseArgs([]string{"-join", "http://a:9911, http://b:9912 ,http://c:9913", "-max-retries", "7"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:9911", "http://b:9912", "http://c:9913"}
	if len(cfg.joinURLs) != len(want) {
		t.Fatalf("-join list parsed as %v", cfg.joinURLs)
	}
	for i, u := range want {
		if cfg.joinURLs[i] != u {
			t.Errorf("-join[%d] = %q, want %q", i, cfg.joinURLs[i], u)
		}
	}
	if cfg.maxRetries != 7 {
		t.Errorf("-max-retries parsed as %d, want 7", cfg.maxRetries)
	}
}

func TestParseArgsStandbyFlags(t *testing.T) {
	cfg, err := parseArgs([]string{
		"-serve", "127.0.0.1:0", "-checkpoint", "/tmp/c", "-resume",
		"-standby-of", "http://primary:9911", "-standby-probe", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.standbyOf != "http://primary:9911" || cfg.standbyProbe != 250*time.Millisecond {
		t.Errorf("standby flags parsed as %+v", cfg)
	}
	// The probe cadence defaults on and the standby defaults off.
	cfg, err = parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.standbyOf != "" || cfg.standbyProbe != 500*time.Millisecond {
		t.Errorf("standby defaults parsed as %+v", cfg)
	}
}

func TestParseArgsDeadlineFlags(t *testing.T) {
	cfg, err := parseArgs([]string{"-decode-timeout", "30s", "-fallback", " plain-mwpm , bp-osd"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.decTimeout != 30*time.Second {
		t.Errorf("-decode-timeout parsed as %v, want 30s", cfg.decTimeout)
	}
	want := []experiment.DecoderKind{experiment.PlainMWPM, experiment.BPOSD}
	if len(cfg.fallback) != len(want) {
		t.Fatalf("-fallback parsed as %v", cfg.fallback)
	}
	for i, k := range want {
		if cfg.fallback[i] != k {
			t.Errorf("-fallback[%d] = %v, want %v", i, cfg.fallback[i], k)
		}
	}
	// Both knobs default to off.
	cfg, err = parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.decTimeout != 0 || cfg.fallback != nil {
		t.Errorf("deadline knobs should default to off: timeout=%v fallback=%v", cfg.decTimeout, cfg.fallback)
	}
}

func TestParseArgsResumeRequiresCheckpoint(t *testing.T) {
	_, err := parseArgs([]string{"-resume"})
	if err == nil {
		t.Fatal("-resume without -checkpoint was accepted")
	}
	if !strings.Contains(err.Error(), "-checkpoint") {
		t.Errorf("error %q should point at the missing -checkpoint flag", err)
	}
}

func TestSchedSignature(t *testing.T) {
	if got := schedSignature(0, nil); got != "decode-timeout=0s fallback=none" {
		t.Errorf("zero knobs: %q", got)
	}
	got := schedSignature(2*time.Second, []experiment.DecoderKind{experiment.PlainMWPM, experiment.BPOSD})
	if got != "decode-timeout=2s fallback=plain-mwpm,bp-osd" {
		t.Errorf("populated knobs: %q", got)
	}
	// The signature must be a pure function of the knobs (it is compared
	// as a string across processes).
	if got != schedSignature(2*time.Second, []experiment.DecoderKind{experiment.PlainMWPM, experiment.BPOSD}) {
		t.Error("signature is not stable")
	}
}

// A resumed sweep with different -decode-timeout/-fallback must warn
// loudly, and the store must end up holding the new signature; matching
// knobs must stay silent.
func TestRecordSchedKnobsWarnsOnMismatch(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sig1 := schedSignature(0, nil)
	recordSchedKnobs(store, sig1, &buf)
	if buf.Len() != 0 {
		t.Fatalf("first recording warned: %q", buf.String())
	}
	recordSchedKnobs(store, sig1, &buf)
	if buf.Len() != 0 {
		t.Fatalf("matching knobs warned: %q", buf.String())
	}
	sig2 := schedSignature(5*time.Second, []experiment.DecoderKind{experiment.PlainMWPM})
	recordSchedKnobs(store, sig2, &buf)
	out := buf.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, sig1) || !strings.Contains(out, sig2) {
		t.Fatalf("mismatch warning missing or incomplete:\n%s", out)
	}
	// The warning and the new signature survive a reopen (a second
	// resume under the new knobs is silent again).
	store2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := store2.Meta("sched"); !ok || v != sig2 {
		t.Fatalf("store holds %q (ok=%v), want the latest signature %q", v, ok, sig2)
	}
	var buf2 strings.Builder
	recordSchedKnobs(store2, sig2, &buf2)
	if buf2.Len() != 0 {
		t.Fatalf("re-resume with matching knobs warned: %q", buf2.String())
	}
}
