// Command ber runs the paper's memory experiments and reproduces the
// block-error-rate figures: Figure 17 (hyperbolic vs planar surface
// codes), Figure 18 (hyperbolic vs toric-hexagonal color codes),
// Figure 19 (flagged MWPM vs plain MWPM on the [[30,8,3,3]] code) and
// Figure 20 (flagged vs Chamberland-style Restriction decoding).
//
// Shot counts default to laptop scale; raise -shots (and sweep -ps) to
// approach the paper's cluster-scale statistics.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
)

func main() {
	figFlag := flag.String("fig", "19", "figure to reproduce: 17, 18, 19 or 20")
	shots := flag.Int("shots", 2000, "shots per point")
	seed := flag.Int64("seed", 1, "base RNG seed")
	psFlag := flag.String("ps", "5e-4,1e-3", "comma-separated physical error rates")
	maxN := flag.Int("maxn", 64, "largest hyperbolic blocklength simulated (figs 17/18)")
	flag.Parse()

	var ps []float64
	for _, s := range strings.Split(*psFlag, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -ps entry %q: %v\n", s, err)
			os.Exit(2)
		}
		ps = append(ps, p)
	}

	switch *figFlag {
	case "17":
		fig17(ps, *shots, *seed, *maxN)
	case "18":
		fig18(ps, *shots, *seed, *maxN)
	case "19":
		fig19(ps, *shots, *seed)
	case "20":
		fig20(ps, *shots, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
}

var fpnArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

func runPoint(code *css.Code, arch fpn.Options, dec experiment.DecoderKind, basis css.Basis, p float64, shots int, seed int64) {
	runPointSched(code, arch, nil, dec, basis, p, shots, seed)
}

func runPointSched(code *css.Code, arch fpn.Options, sched *schedule.Schedule, dec experiment.DecoderKind, basis css.Basis, p float64, shots int, seed int64) {
	res, err := experiment.Run(experiment.Config{
		Code: code, Arch: arch, Basis: basis, P: p,
		Shots: shots, Seed: seed, Decoder: dec, Schedule: sched,
	})
	if err != nil {
		fmt.Printf("%-18s %-22s %c p=%-8.1e error: %v\n", code.Name, dec, basis, p, err)
		return
	}
	fmt.Printf("%-18s %-22s %c p=%-8.1e BER=%.5f BERnorm=%.5f [%0.5f,%0.5f] (%d/%d)\n",
		code.Name, dec, basis, p, res.BER, res.BERNorm, res.CILow, res.CIHigh,
		res.LogicalErrors, res.Shots)
}

// fig17 compares hyperbolic surface codes against planar d=5, d=7.
func fig17(ps []float64, shots int, seed int64, maxN int) {
	fmt.Println("Figure 17: BER_norm of surface codes (flagged MWPM; planar uses the canonical Tomita-Svore schedule)")
	for _, d := range []int{5, 7} {
		l, err := surface.Rotated(d)
		if err != nil {
			continue
		}
		sched, _, err := schedule.CanonicalRotated(l)
		if err != nil {
			fmt.Fprintf(os.Stderr, "canonical d=%d: %v\n", d, err)
			continue
		}
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				runPointSched(l.Code, fpn.Options{}, sched, experiment.FlaggedMWPM, basis, p, shots, seed)
			}
		}
	}
	for _, e := range catalog.Standard() {
		if e.Family != "surface" || e.Code.N > maxN {
			continue
		}
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				runPoint(e.Code, fpnArch, experiment.FlaggedMWPM, basis, p, shots, seed)
			}
		}
	}
}

// fig18 compares hyperbolic color codes against the toric 6.6.6 baseline.
func fig18(ps []float64, shots int, seed int64, maxN int) {
	fmt.Println("Figure 18: BER_norm of color codes (flagged Restriction decoder)")
	var codes []*css.Code
	rng := rand.New(rand.NewSource(seed))
	for _, l := range []int{2, 3} {
		c, err := color.HexagonalToric(l)
		if err != nil {
			continue
		}
		c.ComputeDistances(4, 30_000_000, 20, rng)
		codes = append(codes, c)
	}
	for _, e := range catalog.Standard() {
		if e.Family == "color" && e.Code.N <= maxN {
			codes = append(codes, e.Code)
		}
	}
	for _, code := range codes {
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				runPoint(code, fpnArch, experiment.FlaggedRestriction, basis, p, shots, seed)
			}
		}
	}
}

// fig19: flagged MWPM vs plain MWPM on the [[30,8,3,3]] {5,5} code.
func fig19(ps []float64, shots int, seed int64) {
	fmt.Println("Figure 19: [[30,8,3,3]] hyperbolic surface code, flagged vs plain MWPM")
	code := findCode("surface", 30)
	if code == nil {
		fmt.Fprintln(os.Stderr, "no [[30,8,3,3]] code in catalogue")
		os.Exit(1)
	}
	for _, dec := range []experiment.DecoderKind{experiment.FlaggedMWPM, experiment.PlainMWPM} {
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				runPoint(code, fpnArch, dec, basis, p, shots, seed)
			}
		}
	}
}

// fig20: flagged vs Chamberland-style Restriction on a small {4,6}
// hyperbolic color code.
func fig20(ps []float64, shots int, seed int64) {
	fmt.Println("Figure 20: {4,6} hyperbolic color code, flagged vs Chamberland-style Restriction")
	code := findCode("color", 48)
	if code == nil {
		fmt.Fprintln(os.Stderr, "no small {4,6} color code in catalogue")
		os.Exit(1)
	}
	for _, dec := range []experiment.DecoderKind{experiment.FlaggedRestriction, experiment.BaselineRestriction} {
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				runPoint(code, fpnArch, dec, basis, p, shots, seed)
			}
		}
	}
}

func findCode(family string, n int) *css.Code {
	for _, e := range catalog.Standard() {
		if e.Family == family && e.Code.N == n {
			return e.Code
		}
	}
	return nil
}
