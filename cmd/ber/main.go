// Command ber runs the paper's memory experiments and reproduces the
// block-error-rate figures: Figure 17 (hyperbolic vs planar surface
// codes), Figure 18 (hyperbolic vs toric-hexagonal color codes),
// Figure 19 (flagged MWPM vs plain MWPM on the [[30,8,3,3]] code) and
// Figure 20 (flagged vs Chamberland-style Restriction decoding).
//
// Shot counts default to laptop scale; raise -shots (and sweep -ps) to
// approach the paper's cluster-scale statistics. The sharded engine
// spreads every point over -workers cores with bounded memory, and
// -target-errors / -max-ci stop a point early once its estimate is good
// enough — see EXPERIMENTS.md for a worked deep-BER example.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fabric"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
)

// exitInterrupted is the status for a sweep cut short by SIGINT or
// SIGTERM after flushing completed points and checkpoints — distinct
// from 1 (point errors) and 2 (usage errors) so wrappers can tell a
// clean kill-and-resume cycle from a real failure.
const exitInterrupted = 130

// exitUnreachable is the status for a -join worker that gave up because
// every coordinator address stayed dark through its whole retry budget
// (-max-retries) — distinct from interruption (130) and engine failure
// (1) so fleet wrappers can re-point or restart the worker instead of
// treating it as a decode bug.
const exitUnreachable = 3

// standbyFailThreshold is how many consecutive failed health probes a
// standby tolerates before declaring the primary dead and taking over.
// One failure is a blip; three at the probe cadence is a partition or a
// corpse either way — and a false positive is safe, because epoch
// fencing stops the fenced-out primary from committing anything.
const standbyFailThreshold = 3

func main() {
	cfg, err := parseArgs(os.Args[1:])
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	// First SIGINT/SIGTERM cancels the sweep context: workers stop at
	// shard boundaries, the current point's committed prefix is
	// checkpointed, and completed points stay printed. A second signal
	// force-exits immediately with the interrupted status — no waiting
	// on checkpoint flush — so a stuck teardown can always be escaped.
	// (signal.NotifyContext would keep swallowing signals after the
	// first one, making the second Ctrl-C a silent no-op.)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "ber: second signal; forcing exit without checkpoint flush")
		os.Exit(exitInterrupted)
	}()
	if len(cfg.joinURLs) > 0 {
		// Worker mode: no sweep of our own — decode shards for the
		// coordinator at -join (failing over across the address list)
		// until it announces shutdown.
		id := cfg.workerID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		err := fabric.RunWorker(ctx, fabric.WorkerOptions{
			URL: cfg.joinURLs[0], URLs: cfg.joinURLs[1:], ID: id,
			MaxRetries: cfg.maxRetries, Fallback: cfg.fallback, Log: os.Stderr,
		})
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "ber: worker interrupted; leased shards will be reassigned")
			os.Exit(exitInterrupted)
		}
		if errors.Is(err, fabric.ErrUnreachable) {
			fmt.Fprintln(os.Stderr, "ber:", err)
			os.Exit(exitUnreachable)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ber:", err)
			os.Exit(1)
		}
		return
	}
	r := &runner{
		ctx:          ctx,
		sweep:        experiment.NewSweep(),
		fig:          cfg.fig,
		shots:        cfg.shots,
		seed:         cfg.seed,
		workers:      cfg.workers,
		shard:        cfg.shard,
		targetErrors: cfg.targetErrors,
		maxCI:        cfg.maxCI,
		decTimeout:   cfg.decTimeout,
		fallback:     cfg.fallback,
		resume:       cfg.resume,
	}
	if cfg.checkpointDir != "" {
		// Probe the directory's whole write protocol up front: a
		// read-only or misconfigured -checkpoint dir must fail here, not
		// minutes into the sweep at the first flush.
		if err := checkpoint.ProbeDir(cfg.checkpointDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store, err := checkpoint.Open(cfg.checkpointDir)
		if err != nil {
			// Includes *checkpoint.CorruptRecordError: the store refuses
			// to resume over damaged state and its message names the
			// quarantine sidecar and the remediation.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if store.TornTail() {
			fmt.Fprintln(os.Stderr, "ber: checkpoint file ended mid-record (torn tail); the fragment was dropped and the sweep resumes from the last durable state")
		}
		// The scheduling knobs (-decode-timeout, -fallback) are execution
		// strategy, deliberately outside the per-point fingerprint: a
		// resumed prefix stays valid under different knobs, but the
		// rescued-block accounting (timeout/fallback/degraded counts) can
		// differ from what a fresh run would report. Record them in the
		// store and warn loudly when a resume changes them mid-sweep.
		recordSchedKnobs(store, schedSignature(cfg.decTimeout, cfg.fallback), os.Stderr)
		r.store = store
	}
	var stopFabric func()
	if cfg.serveAddr != "" {
		// Coordinator mode: points are decoded by -join workers instead of
		// local goroutines, and the coordinator takes over the ledger
		// bookkeeping (resume, commit-cadence checkpoints, final records).
		// The listener goes up before the coordinator exists so a standby
		// can be in the workers' -join lists from the start: it answers
		// 503 until the handler is swapped in at takeover.
		ln, err := net.Listen("tcp", cfg.serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ber:", err)
			os.Exit(1)
		}
		var live atomic.Pointer[http.Handler]
		// Every fabric exchange is one bounded JSON round trip (completion
		// bodies cap at 16 MiB), so blanket read/write timeouts are safe;
		// a wedged worker can never pin a coordinator connection open.
		srv := &http.Server{
			Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if h := live.Load(); h != nil {
					(*h).ServeHTTP(w, req)
					return
				}
				http.Error(w, "fabric standby: not serving yet", http.StatusServiceUnavailable)
			}),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       time.Minute,
			WriteTimeout:      time.Minute,
		}
		go func() { _ = srv.Serve(ln) }()
		var failovers int64
		if cfg.standbyOf != "" {
			// Parsed by scripts (crash_resume.sh) to discover a :0 port
			// before promotion.
			fmt.Fprintf(os.Stderr, "ber: standby fabric on %s (primary %s)\n", ln.Addr(), cfg.standbyOf)
			if !standbyWait(ctx, cfg.standbyOf, cfg.standbyProbe) {
				fmt.Fprintln(os.Stderr, "ber: standby interrupted before takeover")
				os.Exit(exitInterrupted)
			}
			failovers = 1
			fmt.Fprintf(os.Stderr, "ber: primary %s dark for %d probes; standby taking over the sweep\n",
				cfg.standbyOf, standbyFailThreshold)
		}
		// NewCoordinator bumps and persists the ledger epoch, so even if
		// the primary is merely partitioned (not dead), its later commits
		// are fenced off — promotion is safe against false positives.
		co := fabric.NewCoordinator(fabric.Options{
			LeaseTTL: cfg.leaseTTL, Store: r.store, Resume: cfg.resume,
			CheckpointEvery: checkpointEveryBlocks, Log: os.Stderr,
			Failovers: failovers,
		})
		h := co.Handler()
		live.Store(&h)
		// Parsed by scripts (crash_resume.sh) to discover a :0 port.
		fmt.Fprintf(os.Stderr, "ber: serving fabric on %s\n", ln.Addr())
		r.fab, r.store, r.resume = co, nil, false
		stopFabric = func() {
			co.Shutdown()
			// Let polling workers observe the shutdown before the
			// listener goes away, so they exit cleanly instead of
			// burning their retry budget on a dead socket.
			time.Sleep(cfg.linger)
			_ = srv.Close()
		}
	}
	switch cfg.fig {
	case "17":
		fig17(r, cfg.ps, cfg.maxN)
	case "18":
		fig18(r, cfg.ps, cfg.maxN)
	case "19":
		fig19(r, cfg.ps)
	case "20":
		fig20(r, cfg.ps)
	}
	if stopFabric != nil {
		stopFabric()
	}
	if ctx.Err() != nil {
		msg := "ber: interrupted; completed points were flushed"
		if r.store != nil {
			msg += "; partial progress checkpointed (rerun with -resume)"
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(exitInterrupted)
	}
}

// cliConfig is the parsed and validated command line.
type cliConfig struct {
	fig           string
	shots         int
	seed          int64
	ps            []float64
	maxN          int
	workers       int
	shard         int
	targetErrors  int
	maxCI         float64
	decTimeout    time.Duration
	fallback      []experiment.DecoderKind
	checkpointDir string
	resume        bool
	serveAddr     string
	joinURLs      []string
	workerID      string
	maxRetries    int
	leaseTTL      time.Duration
	linger        time.Duration
	standbyOf     string
	standbyProbe  time.Duration
}

// parseArgs parses and validates the ber command line. Engine knobs are
// checked eagerly with the same rules as experiment.Config validation,
// so a bad flag fails the run with one clear message instead of
// poisoning every sweep point with the same error.
func parseArgs(args []string) (*cliConfig, error) {
	fs := flag.NewFlagSet("ber", flag.ContinueOnError)
	figFlag := fs.String("fig", "19", "figure to reproduce: 17, 18, 19 or 20")
	shots := fs.Int("shots", 2000, "shots per point (upper bound when early stopping is on)")
	seed := fs.Int64("seed", 1, "base RNG seed; every point derives its own stream from it")
	psFlag := fs.String("ps", "5e-4,1e-3", "comma-separated physical error rates")
	maxN := fs.Int("maxn", 64, "largest hyperbolic blocklength simulated (figs 17/18)")
	workers := fs.Int("workers", 0, "shard workers per point (0 = GOMAXPROCS)")
	shard := fs.Int("shard", 0, "shots per work shard (0 = 1024); results are identical for any value")
	targetErrors := fs.Int("target-errors", 0, "stop a point after this many logical errors (0 = off)")
	maxCI := fs.Float64("max-ci", 0, "stop a point when the Wilson 95% CI half-width reaches this (0 = off)")
	checkpointDir := fs.String("checkpoint", "", "directory for crash-safe sweep checkpoints (empty = off)")
	resume := fs.Bool("resume", false, "skip finished points and resume partial ones from -checkpoint")
	decTimeout := fs.Duration("decode-timeout", 0, "wall-clock budget per decode shard; a hung or crawling shard fails over to -fallback and is counted, instead of stalling the sweep (0 = off)")
	fallbackFlag := fs.String("fallback", "", "comma-separated decoder kinds that rescue panicking or timed-out shards, in order (e.g. plain-mwpm,bp-osd)")
	serveAddr := fs.String("serve", "", "run as fabric coordinator on this address (e.g. :9911); -join workers decode the points")
	joinFlag := fs.String("join", "", "run as fabric worker for the coordinator at this URL; comma-separate standby addresses to fail over across (e.g. http://host:9911,http://standby:9912)")
	workerID := fs.String("worker-id", "", "worker name in coordinator logs (-join only; default hostname-pid)")
	maxRetries := fs.Int("max-retries", 0, "worker: attempts per coordinator request before giving up with exit status 3, overriding the patience-derived budget (-join only; 0 = off)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "shard lease lifetime before a silent worker's shard is reassigned (-serve only)")
	linger := fs.Duration("linger", 2*time.Second, "how long the coordinator keeps answering after the sweep so workers see the shutdown (-serve only)")
	standbyOf := fs.String("standby-of", "", "serve as warm standby for the coordinator at this URL: answer 503 until it goes dark, then take over the sweep from the shared ledger (requires -serve, -checkpoint and -resume)")
	standbyProbe := fs.Duration("standby-probe", 500*time.Millisecond, "standby health-probe cadence against the primary's /v1/status (-standby-of only)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *resume && *checkpointDir == "" {
		return nil, fmt.Errorf("-resume requires -checkpoint <dir>")
	}
	if *serveAddr != "" && *joinFlag != "" {
		return nil, fmt.Errorf("-serve and -join are mutually exclusive")
	}
	if *joinFlag != "" && (*checkpointDir != "" || *resume) {
		return nil, fmt.Errorf("-join is incompatible with -checkpoint/-resume: the coordinator owns the ledger")
	}
	if *serveAddr != "" && (*decTimeout != 0 || *fallbackFlag != "") {
		return nil, fmt.Errorf("-serve is incompatible with -decode-timeout/-fallback: scheduling knobs do not cross the fabric")
	}
	if *maxRetries < 0 {
		return nil, fmt.Errorf("-max-retries must be >= 0 (got %d)", *maxRetries)
	}
	if *maxRetries > 0 && *joinFlag == "" {
		return nil, fmt.Errorf("-max-retries only applies to -join worker mode")
	}
	if *standbyOf != "" {
		if *serveAddr == "" {
			return nil, fmt.Errorf("-standby-of requires -serve <addr>: the standby's own listen address")
		}
		if *checkpointDir == "" || !*resume {
			return nil, fmt.Errorf("-standby-of requires -checkpoint and -resume: a promoted standby rebuilds coordinator state from the shared ledger")
		}
	}
	if *standbyProbe <= 0 {
		return nil, fmt.Errorf("-standby-probe must be positive (got %v)", *standbyProbe)
	}
	if *leaseTTL <= 0 {
		return nil, fmt.Errorf("-lease-ttl must be positive (got %v)", *leaseTTL)
	}
	if *linger < 0 {
		return nil, fmt.Errorf("-linger must be >= 0 (got %v)", *linger)
	}
	switch *figFlag {
	case "17", "18", "19", "20":
	default:
		return nil, fmt.Errorf("unknown figure %q (want 17, 18, 19 or 20)", *figFlag)
	}
	if *shots <= 0 {
		return nil, fmt.Errorf("-shots must be positive (got %d)", *shots)
	}
	if *maxN <= 0 {
		return nil, fmt.Errorf("-maxn must be positive (got %d)", *maxN)
	}
	if *workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0 (got %d)", *workers)
	}
	if *shard < 0 {
		return nil, fmt.Errorf("-shard must be >= 0 (got %d)", *shard)
	}
	if *targetErrors < 0 {
		return nil, fmt.Errorf("-target-errors must be >= 0 (got %d)", *targetErrors)
	}
	if *maxCI < 0 || *maxCI >= 1 {
		return nil, fmt.Errorf("-max-ci must be in [0, 1) (got %g)", *maxCI)
	}
	if *decTimeout < 0 {
		return nil, fmt.Errorf("-decode-timeout must be >= 0 (got %v)", *decTimeout)
	}
	var fallback []experiment.DecoderKind
	if *fallbackFlag != "" {
		for _, s := range strings.Split(*fallbackFlag, ",") {
			k, err := decoderKindByName(strings.TrimSpace(s))
			if err != nil {
				return nil, err
			}
			fallback = append(fallback, k)
		}
	}
	var joinURLs []string
	if *joinFlag != "" {
		for _, s := range strings.Split(*joinFlag, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				return nil, fmt.Errorf("-join has an empty address in its list %q", *joinFlag)
			}
			joinURLs = append(joinURLs, s)
		}
	}
	var ps []float64
	for _, s := range strings.Split(*psFlag, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -ps entry %q: %v", s, err)
		}
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("-ps entry %g is not a physical error rate in (0, 1)", p)
		}
		ps = append(ps, p)
	}
	return &cliConfig{
		fig: *figFlag, shots: *shots, seed: *seed, ps: ps, maxN: *maxN,
		workers: *workers, shard: *shard, targetErrors: *targetErrors, maxCI: *maxCI,
		decTimeout: *decTimeout, fallback: fallback,
		checkpointDir: *checkpointDir, resume: *resume,
		serveAddr: *serveAddr, joinURLs: joinURLs, workerID: *workerID,
		maxRetries: *maxRetries, leaseTTL: *leaseTTL, linger: *linger,
		standbyOf: *standbyOf, standbyProbe: *standbyProbe,
	}, nil
}

// standbyWait probes the primary coordinator's /v1/status every probe
// interval and returns true once standbyFailThreshold consecutive
// probes fail — the takeover signal. It returns false when ctx is
// cancelled first. Probe pacing is pure liveness: whoever ends up
// coordinating, the merged counts are the same by determinism, and the
// epoch fence makes even a false-positive takeover safe.
func standbyWait(ctx context.Context, primary string, probe time.Duration) bool {
	client := &http.Client{Timeout: probe}
	t := time.NewTicker(probe)
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/status", nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ber: bad -standby-of address:", err)
			return false
		}
		resp, err := client.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		if ok {
			fails = 0
			continue
		}
		if fails++; fails >= standbyFailThreshold {
			return true
		}
	}
}

// schedMetaKey is the checkpoint meta entry holding the sweep's
// scheduling-knob signature.
const schedMetaKey = "sched"

// schedSignature renders the scheduling knobs as a canonical, stable
// string: the value stored in the checkpoint and compared on resume.
func schedSignature(decTimeout time.Duration, fallback []experiment.DecoderKind) string {
	names := "none"
	if len(fallback) > 0 {
		parts := make([]string, len(fallback))
		for i, k := range fallback {
			parts[i] = k.String()
		}
		names = strings.Join(parts, ",")
	}
	return fmt.Sprintf("decode-timeout=%s fallback=%s", decTimeout, names)
}

// recordSchedKnobs pins this run's scheduling-knob signature in the
// checkpoint store, warning loudly on w first if the store was written
// under different knobs — the resumed prefixes stay bit-identical, but
// the timeout/fallback shard accounting of points finished across the
// boundary may differ from a single-setting run.
func recordSchedKnobs(store *checkpoint.Store, sig string, w io.Writer) {
	if prev, ok := store.Meta(schedMetaKey); ok && prev != sig {
		fmt.Fprintf(w,
			"ber: WARNING: scheduling knobs differ from the ones this checkpoint was written with\n"+
				"ber: WARNING:   checkpoint: %s\n"+
				"ber: WARNING:   this run:   %s\n"+
				"ber: WARNING: resumed points keep their committed prefix (bit-identical by construction), but\n"+
				"ber: WARNING: timeout/fallback shard accounting may differ from a run done entirely with one setting\n",
			prev, sig)
	}
	if err := store.SetMeta(schedMetaKey, sig); err != nil {
		fmt.Fprintln(w, "ber: recording scheduling knobs in the checkpoint failed:", err)
	}
}

// decoderKindByName resolves a -fallback entry against the canonical
// DecoderKind names (the same strings the result lines print).
func decoderKindByName(name string) (experiment.DecoderKind, error) {
	for k := experiment.FlaggedMWPM; k <= experiment.BPOSD; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown decoder kind %q in -fallback (want one of flagged-mwpm, plain-mwpm, flagged-restriction, baseline-restriction, flagged-unionfind, bp-osd)", name)
}

var fpnArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

// checkpointEveryBlocks throttles mid-run checkpoint writes: a partial
// prefix is persisted whenever it has grown by this many 64-shot blocks
// since the last write. A SIGKILL therefore loses at most ~16k shots of
// progress per point, while the atomic file rewrite stays far off the
// hot path.
const checkpointEveryBlocks = 256

// runner carries the sweep-wide knobs and the pipeline cache, so every
// (decoder, basis, p) point of a figure reuses the p-independent
// network/schedule/round-plan artifacts of its code.
type runner struct {
	ctx          context.Context
	sweep        *experiment.Sweep
	fig          string
	shots        int
	seed         int64
	workers      int
	shard        int
	targetErrors int
	maxCI        float64
	decTimeout   time.Duration
	fallback     []experiment.DecoderKind
	store        *checkpoint.Store
	resume       bool
	fab          *fabric.Coordinator // non-nil in -serve mode: points run on the fabric
}

func (r *runner) point(code *css.Code, arch fpn.Options, dec experiment.DecoderKind, basis css.Basis, p float64) {
	r.pointSched(code, arch, nil, dec, basis, p)
}

func (r *runner) pointSched(code *css.Code, arch fpn.Options, sched *schedule.Schedule, dec experiment.DecoderKind, basis css.Basis, p float64) {
	if r.ctx.Err() != nil {
		return // interrupted: fall through to the exit path without starting new points
	}
	// Each point gets its own seed: reusing the base seed verbatim
	// would give every point of the sweep an identical RNG stream and
	// statistically correlated estimates. The code name joins the
	// figure tag so same-figure points on different codes decouple too.
	pointSeed := experiment.PointSeed(r.seed, "fig"+r.fig+":"+code.Name, dec, basis, p)
	cfg := experiment.Config{
		Code: code, Arch: arch, Basis: basis, P: p,
		Shots: r.shots, Seed: pointSeed, Decoder: dec, Schedule: sched,
		Workers: r.workers, ShardShots: r.shard,
		TargetErrors: r.targetErrors, MaxCI: r.maxCI,
		DecodeTimeout: r.decTimeout, Fallback: r.fallback,
	}
	if r.fab != nil {
		// Fabric mode: the coordinator runs the point on whatever workers
		// are joined and does the ledger bookkeeping itself; the result
		// (and thus the printed line) is bit-identical to a local run.
		res, err := r.fab.RunPoint(r.ctx, cfg)
		if err != nil {
			fmt.Printf("%-18s %-22s %c p=%-8.1e error: %v\n", code.Name, dec, basis, p, err)
			return
		}
		// Quarantined shards surface exactly like local shard failures, so
		// a fleet operator reads the same repro lines either way.
		for i := range res.ShardErrors {
			fmt.Fprintln(os.Stderr, "ber: "+res.ShardErrors[i].Error())
		}
		if res.Interrupted {
			fmt.Fprintf(os.Stderr, "ber: %s %s %c p=%.1e interrupted at %d/%d shots\n",
				code.Name, dec, basis, p, res.Shots, r.shots)
			return
		}
		r.print(code, dec, basis, p, res)
		return
	}
	var key string
	if r.store != nil {
		key = cfg.Fingerprint()
		if rec, ok := r.store.Lookup(key); ok && r.resume {
			if rec.Done {
				// Finished in an earlier run: report it exactly as that
				// run did, without resampling a single shot.
				r.print(code, dec, basis, p, experiment.Reconstruct(cfg, rec.Blocks, rec.Shots, rec.Errors, rec.EarlyStopped))
				return
			}
			cfg.Resume = &experiment.Resume{Blocks: rec.Blocks, Shots: rec.Shots, Errors: rec.Errors}
		}
		// Persist the growing prefix so a SIGKILL mid-point resumes at
		// the last committed watermark instead of restarting the point.
		lastSaved := 0
		if cfg.Resume != nil {
			lastSaved = cfg.Resume.Blocks
		}
		cfg.OnCommit = func(pr experiment.Progress) {
			if pr.Blocks-lastSaved < checkpointEveryBlocks {
				return
			}
			lastSaved = pr.Blocks
			if err := r.store.Put(checkpoint.Record{Key: key, Blocks: pr.Blocks, Shots: pr.Shots, Errors: pr.Errors}); err != nil {
				fmt.Fprintln(os.Stderr, "ber: checkpoint write failed:", err)
			}
		}
	}
	res, err := r.sweep.RunContext(r.ctx, cfg)
	if err != nil {
		fmt.Printf("%-18s %-22s %c p=%-8.1e error: %v\n", code.Name, dec, basis, p, err)
		return
	}
	for i := range res.ShardErrors {
		fmt.Fprintln(os.Stderr, "ber: "+res.ShardErrors[i].Error())
	}
	if r.store != nil {
		rec := checkpoint.Record{
			Key: key, Blocks: res.Blocks, Shots: res.Shots, Errors: res.LogicalErrors,
			EarlyStopped: res.EarlyStopped,
			Done:         !res.Interrupted && len(res.ShardErrors) == 0,
		}
		if err := r.store.Put(rec); err != nil {
			fmt.Fprintln(os.Stderr, "ber: checkpoint write failed:", err)
		}
	}
	if res.Interrupted {
		fmt.Fprintf(os.Stderr, "ber: %s %s %c p=%.1e interrupted at %d/%d shots\n",
			code.Name, dec, basis, p, res.Shots, r.shots)
		return
	}
	r.print(code, dec, basis, p, res)
}

// print emits one point's result line. The format is a pure function of
// the committed (shots, errors) counts, so a point replayed from a
// checkpoint prints byte-identically to the run that computed it.
func (r *runner) print(code *css.Code, dec experiment.DecoderKind, basis css.Basis, p float64, res *experiment.Result) {
	mark := ""
	if res.EarlyStopped {
		mark = " early-stop"
	}
	if n := len(res.ShardErrors); n > 0 {
		mark += fmt.Sprintf(" shard-failures=%d", n)
	}
	if res.FallbackBlocks > 0 {
		mark += fmt.Sprintf(" fallback-blocks=%d", res.FallbackBlocks)
	}
	if res.TimeoutBlocks > 0 {
		mark += fmt.Sprintf(" timeout-blocks=%d", res.TimeoutBlocks)
	}
	if res.DegradedBlocks > 0 {
		mark += fmt.Sprintf(" degraded-blocks=%d", res.DegradedBlocks)
	}
	fmt.Printf("%-18s %-22s %c p=%-8.1e BER=%.5f BERnorm=%.5f [%0.5f,%0.5f] (%d/%d)%s\n",
		code.Name, dec, basis, p, res.BER, res.BERNorm, res.CILow, res.CIHigh,
		res.LogicalErrors, res.Shots, mark)
}

// fig17 compares hyperbolic surface codes against planar d=5, d=7.
func fig17(r *runner, ps []float64, maxN int) {
	fmt.Println("Figure 17: BER_norm of surface codes (flagged MWPM; planar uses the canonical Tomita-Svore schedule)")
	for _, d := range []int{5, 7} {
		l, err := surface.Rotated(d)
		if err != nil {
			continue
		}
		sched, _, err := schedule.CanonicalRotated(l)
		if err != nil {
			fmt.Fprintf(os.Stderr, "canonical d=%d: %v\n", d, err)
			continue
		}
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				r.pointSched(l.Code, fpn.Options{}, sched, experiment.FlaggedMWPM, basis, p)
			}
		}
	}
	for _, e := range catalog.Standard() {
		if e.Family != "surface" || e.Code.N > maxN {
			continue
		}
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				r.point(e.Code, fpnArch, experiment.FlaggedMWPM, basis, p)
			}
		}
	}
}

// fig18 compares hyperbolic color codes against the toric 6.6.6 baseline.
func fig18(r *runner, ps []float64, maxN int) {
	fmt.Println("Figure 18: BER_norm of color codes (flagged Restriction decoder)")
	var codes []*css.Code
	rng := rand.New(rand.NewSource(r.seed))
	for _, l := range []int{2, 3} {
		c, err := color.HexagonalToric(l)
		if err != nil {
			continue
		}
		c.ComputeDistances(4, 30_000_000, 20, rng)
		codes = append(codes, c)
	}
	for _, e := range catalog.Standard() {
		if e.Family == "color" && e.Code.N <= maxN {
			codes = append(codes, e.Code)
		}
	}
	for _, code := range codes {
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				r.point(code, fpnArch, experiment.FlaggedRestriction, basis, p)
			}
		}
	}
}

// fig19: flagged MWPM vs plain MWPM on the [[30,8,3,3]] {5,5} code.
func fig19(r *runner, ps []float64) {
	fmt.Println("Figure 19: [[30,8,3,3]] hyperbolic surface code, flagged vs plain MWPM")
	code := findCode("surface", 30)
	if code == nil {
		fmt.Fprintln(os.Stderr, "no [[30,8,3,3]] code in catalogue")
		os.Exit(1)
	}
	for _, dec := range []experiment.DecoderKind{experiment.FlaggedMWPM, experiment.PlainMWPM} {
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				r.point(code, fpnArch, dec, basis, p)
			}
		}
	}
}

// fig20: flagged vs Chamberland-style Restriction on a small {4,6}
// hyperbolic color code.
func fig20(r *runner, ps []float64) {
	fmt.Println("Figure 20: {4,6} hyperbolic color code, flagged vs Chamberland-style Restriction")
	code := findCode("color", 48)
	if code == nil {
		fmt.Fprintln(os.Stderr, "no small {4,6} color code in catalogue")
		os.Exit(1)
	}
	for _, dec := range []experiment.DecoderKind{experiment.FlaggedRestriction, experiment.BaselineRestriction} {
		for _, basis := range []css.Basis{css.X, css.Z} {
			for _, p := range ps {
				r.point(code, fpnArch, dec, basis, p)
			}
		}
	}
}

func findCode(family string, n int) *css.Code {
	for _, e := range catalog.Standard() {
		if e.Family == family && e.Code.N == n {
			return e.Code
		}
	}
	return nil
}
