// Command deff measures effective distances: for a code/decoder
// combination it probes the memory circuit's detector error model with
// every single fault (exhaustively) and sampled fault pairs, printing
// the deff evidence behind the paper's Figures 19 and 20.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
)

func main() {
	family := flag.String("family", "surface", "code family: surface or color")
	n := flag.Int("n", 30, "code blocklength from the catalogue")
	p := flag.Float64("p", 1e-3, "physical error rate for the error model")
	pairs := flag.Int("pairs", 300, "sampled fault pairs")
	flag.Parse()

	var code *css.Code
	for _, e := range catalog.Standard() {
		if e.Family == *family && e.Code.N == *n {
			code = e.Code
			break
		}
	}
	if code == nil {
		fmt.Fprintf(os.Stderr, "no %s code with n=%d in catalogue (run cmd/mapgen for the list)\n", *family, *n)
		os.Exit(1)
	}
	decoders := []experiment.DecoderKind{experiment.FlaggedMWPM, experiment.PlainMWPM, experiment.FlaggedUnionFind}
	if *family == "color" {
		decoders = []experiment.DecoderKind{experiment.FlaggedRestriction, experiment.BaselineRestriction}
	}
	fmt.Printf("Effective-distance probe: %s %s, p=%.0e\n", code.Name, code.Params(), *p)
	fmt.Printf("%-22s %8s %9s %10s %7s %12s %12s\n",
		"decoder", "faults", "failures", "ambiguous", "deff≥", "pairs-failed", "flagged-frac")
	for _, dec := range decoders {
		rep, err := experiment.MeasureDeff(experiment.Config{
			Code:    code,
			Arch:    fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4},
			Basis:   css.Z,
			P:       *p,
			Seed:    1,
			Decoder: dec,
		}, *pairs)
		if err != nil {
			fmt.Printf("%-22s error: %v\n", dec, err)
			continue
		}
		fmt.Printf("%-22s %8d %9d %10d %7d %8d/%-4d %12.2f\n",
			dec, rep.Faults, rep.SingleFailures, rep.Ambiguous, rep.DeffLowerBound,
			rep.PairFailures, rep.PairsSampled, rep.FlaggedFraction)
	}
}
