// Command mapgen regenerates the hyperbolic code inventory (the
// reproduction of the paper's Tables IV and V): for every {r,s}
// subfamily it searches the finite-group menu for rotation pairs, builds
// the closed maps, and prints each code's parameters and ideal rate.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/fpn"
)

func main() {
	family := flag.String("family", "all", "family to list: surface, color or all")
	jsonPath := flag.String("json", "", "also write the catalogue (with dart permutations) to this JSON file")
	semi := flag.Int("semi", 0, "also derive semi-hyperbolic codes by l-fold subdivision of the {4,s} entries (0 = off)")
	flag.Parse()

	entries := catalog.Standard()
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := catalog.WriteJSON(f, entries); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", len(entries), *jsonPath)
	}
	if *family == "surface" || *family == "all" {
		fmt.Println("Table IV: hyperbolic surface codes (edges→data, faces→Z, vertices→X)")
		fmt.Printf("%-10s %-8s %5s %5s %4s %4s %7s %8s %s\n",
			"subfamily", "Rideal", "n", "k", "dX", "dZ", "exact", "Reff(%)", "group")
		for _, e := range entries {
			if e.Family != "surface" {
				continue
			}
			printEntry(e)
		}
		fmt.Println()
	}
	if *family == "color" || *family == "all" {
		fmt.Println("Table V: hyperbolic color codes (truncated {s/2,2r} maps, 3-colored plaquettes)")
		fmt.Printf("%-10s %-8s %5s %5s %4s %4s %7s %8s %s\n",
			"subfamily", "Rideal", "n", "k", "dX", "dZ", "exact", "Reff(%)", "group")
		for _, e := range entries {
			if e.Family != "color" {
				continue
			}
			printEntry(e)
		}
	}
	if *family != "surface" && *family != "color" && *family != "all" {
		fmt.Fprintf(os.Stderr, "unknown family %q\n", *family)
		os.Exit(2)
	}
	if *semi > 1 {
		fmt.Println()
		fmt.Printf("Semi-hyperbolic codes (l=%d subdivision of the {4,s} entries)\n", *semi)
		fmt.Printf("%-10s %-8s %5s %5s %4s %4s %7s %8s %s\n",
			"subfamily", "Rideal", "n", "k", "dX", "dZ", "exact", "Reff(%)", "group")
		for _, e := range catalog.SemiHyperbolicCodes(entries, *semi, 4000) {
			printEntry(e)
		}
	}
}

func printEntry(e catalog.Entry) {
	net, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	reff := 0.0
	if err == nil {
		reff = net.EffectiveRate()
	}
	exact := "yes"
	if !e.Code.DXExact || !e.Code.DZExact {
		exact = "bound"
	}
	fmt.Printf("{%d,%-2d}     %-8.3f %5d %5d %4d %4d %7s %8.2f %s\n",
		e.Subfamily[0], e.Subfamily[1], e.Code.IdealRate(),
		e.Code.N, e.Code.K, e.Code.DX, e.Code.DZ, exact, 100*reff, e.GroupName)
}
