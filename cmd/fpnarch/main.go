// Command fpnarch builds Flag-Proxy Networks for the code catalogue and
// reproduces the paper's architectural results: Figure 8(a) (qubit
// composition by type), Figure 12 (effective rates with and without flag
// sharing), Table I (highest mean connectivity per subfamily), and the
// headline space-efficiency ratios versus the d=5 planar surface code.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
)

func main() {
	fig := flag.String("fig", "all", "what to print: 8a, 12, table1, headline or all")
	flag.Parse()

	entries := catalog.Standard()
	switch *fig {
	case "8a":
		fig8a(entries)
	case "12":
		fig12(entries)
	case "table1":
		table1(entries)
	case "headline":
		headline(entries)
	case "all":
		fig8a(entries)
		fmt.Println()
		fig12(entries)
		fmt.Println()
		table1(entries)
		fmt.Println()
		headline(entries)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// subfamilyGroup is one populated (family, {r,s}) slot of the catalogue.
type subfamilyGroup struct {
	family  string
	rs      [2]int
	entries []catalog.Entry
}

func subfamilies(entries []catalog.Entry) []subfamilyGroup {
	var out []subfamilyGroup
	for _, fam := range []string{"surface", "color"} {
		var rss [][2]int
		if fam == "surface" {
			rss = catalog.SurfaceSubfamilies
		} else {
			rss = catalog.ColorSubfamilies
		}
		for _, rs := range rss {
			es := catalog.BySubfamily(entries, fam, rs)
			if len(es) > 0 {
				out = append(out, subfamilyGroup{family: fam, rs: rs, entries: es})
			}
		}
	}
	return out
}

// fig8a prints the mean qubit composition per subfamily (shared flags).
func fig8a(entries []catalog.Entry) {
	fmt.Println("Figure 8(a): qubit composition by type (FPN with flag sharing, degree ≤ 4)")
	fmt.Printf("%-8s %-8s %8s %8s %8s %8s\n", "family", "sub", "data%", "parity%", "flag%", "proxy%")
	for _, sf := range subfamilies(entries) {
		fam, rs, es := sf.family, sf.rs, sf.entries
		var frac [4]float64
		for _, e := range es {
			net, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
			if err != nil {
				continue
			}
			counts := net.CountByType()
			total := float64(net.NumQubits())
			frac[0] += float64(counts[fpn.Data]) / total
			frac[1] += float64(counts[fpn.Parity]) / total
			frac[2] += float64(counts[fpn.Flag]) / total
			frac[3] += float64(counts[fpn.Proxy]) / total
		}
		n := float64(len(es))
		fmt.Printf("%-8s {%d,%-2d}  %8.1f %8.1f %8.1f %8.1f\n",
			fam, rs[0], rs[1], 100*frac[0]/n, 100*frac[1]/n, 100*frac[2]/n, 100*frac[3]/n)
	}
}

// fig12 prints effective rates with and without flag sharing.
func fig12(entries []catalog.Entry) {
	fmt.Println("Figure 12: effective rate Reff = k/N with and without flag sharing")
	fmt.Printf("(d=5 planar surface code reference: %.4f = 1/49)\n", 1.0/49)
	fmt.Printf("%-8s %-16s %10s %10s %8s\n", "family", "code", "no-share", "shared", "gain")
	for _, e := range entries {
		plain, err1 := fpn.Build(e.Code, fpn.Options{UseFlags: true, MaxDegree: 4})
		shared, err2 := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
		if err1 != nil || err2 != nil {
			continue
		}
		fmt.Printf("%-8s %-16s %10.4f %10.4f %7.2fx\n",
			e.Family, e.Code.Name, plain.EffectiveRate(), shared.EffectiveRate(),
			shared.EffectiveRate()/plain.EffectiveRate())
	}
}

// table1 prints the highest mean degree per subfamily plus the planar
// surface codes.
func table1(entries []catalog.Entry) {
	fmt.Println("Table I: highest mean degree by subfamily (FPN with flag sharing)")
	fmt.Printf("%-10s %-10s %12s %10s\n", "family", "subfamily", "mean-degree", "max-degree")
	for _, sf := range subfamilies(entries) {
		fam, rs, es := sf.family, sf.rs, sf.entries
		best := 0.0
		maxDeg := 0
		for _, e := range es {
			net, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
			if err != nil {
				continue
			}
			if net.MeanDegree() > best {
				best = net.MeanDegree()
			}
			if net.MaxDegreeUsed() > maxDeg {
				maxDeg = net.MaxDegreeUsed()
			}
		}
		fmt.Printf("%-10s {%d,%-2d}    %12.2f %10d\n", fam, rs[0], rs[1], best, maxDeg)
	}
	for _, d := range []int{3, 5, 7} {
		l, err := surface.Rotated(d)
		if err != nil {
			continue
		}
		net, err := fpn.Build(l.Code, fpn.Options{})
		if err != nil {
			continue
		}
		fmt.Printf("%-10s d=%-7d %12.2f %10d\n", "planar", d, net.MeanDegree(), net.MaxDegreeUsed())
	}
}

// headline prints the mean efficiency ratio versus the d=5 planar code.
func headline(entries []catalog.Entry) {
	ref := 1.0 / 49
	fmt.Println("Headline: space efficiency vs d=5 planar surface code (Reff = 1/49)")
	for _, fam := range []string{"surface", "color"} {
		sum, max, n := 0.0, 0.0, 0
		for _, e := range entries {
			if e.Family != fam {
				continue
			}
			net, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
			if err != nil {
				continue
			}
			ratio := net.EffectiveRate() / ref
			sum += ratio
			if ratio > max {
				max = ratio
			}
			n++
		}
		if n > 0 {
			fmt.Printf("hyperbolic %-8s mean %.1fx, up to %.1fx (paper: %s)\n",
				fam, sum/float64(n), max, map[string]string{"surface": "2.9x / 4.6x", "color": "5.5x / 6.8x"}[fam])
		}
	}
}
