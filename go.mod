module github.com/fpn/flagproxy

go 1.22
